(* The serve subsystem: protocol round-trips and tolerance, the
   bounded job queue, and a live daemon on a temp socket — server
   verdicts and work counters bit-identical to direct one-shot runs,
   queue-full rejection, deadline expiry, warm-cache accounting,
   coalescing, interim events. *)

open Helpers
module Json = Lcp_obs.Json
module Metrics = Lcp_obs.Metrics
module Run_cfg = Lcp_obs.Run_cfg
module Sink = Lcp_obs.Sink
module Protocol = Lcp_serve.Protocol
module Jobq = Lcp_serve.Jobq
module Server = Lcp_serve.Server
module Session = Lcp_serve.Session
module Client = Lcp_serve.Client

let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* JSON plumbing helpers                                               *)

let get json path =
  List.fold_left
    (fun j key ->
      match Json.member key j with
      | Ok v -> v
      | Error e -> Alcotest.fail (Printf.sprintf "member %s: %s" key e))
    json path

let get_int json path =
  match Json.to_int (get json path) with
  | Ok v -> v
  | Error e -> Alcotest.fail e

let get_bool json path =
  match Json.to_bool (get json path) with
  | Ok v -> v
  | Error e -> Alcotest.fail e

let parse_request json =
  match Protocol.request_of_json json with
  | Ok r -> r
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* protocol round-trips                                                *)

let sample_requests =
  [
    { Protocol.kind = Protocol.Ping; opts = Protocol.default_opts };
    { Protocol.kind = Protocol.Metrics; opts = Protocol.default_opts };
    { Protocol.kind = Protocol.Shutdown; opts = Protocol.default_opts };
    {
      Protocol.kind = Protocol.Check { decoder = "degree-one"; graph = "cycle:5" };
      opts =
        {
          Protocol.jobs = Some 2;
          heavy = Some true;
          seed = Some 7;
          deadline_ms = Some 1500;
          eval_cache = Some false;
          orbit_prune = Some false;
          progress = true;
        };
    };
    {
      Protocol.kind = Protocol.Prove { decoder = "spanning"; graph = "path:4" };
      opts = Protocol.default_opts;
    };
    {
      Protocol.kind =
        Protocol.Sweep
          {
            decoder = "union";
            n = 5;
            strategy = "mask-scan";
            early_exit = true;
            shards = 1;
          };
      opts = { Protocol.default_opts with Protocol.seed = Some 1 };
    };
    {
      Protocol.kind =
        Protocol.Sweep
          {
            decoder = "degree-one";
            n = 6;
            strategy = "orderly";
            early_exit = false;
            shards = 4;
          };
      opts = Protocol.default_opts;
    };
    {
      Protocol.kind =
        Protocol.Sweep_shard
          {
            decoder = "degree-one";
            n = 6;
            strategy = "orderly";
            shards = 3;
            shard = 2;
          };
      opts = Protocol.default_opts;
    };
    {
      Protocol.kind =
        Protocol.Lint
          { decoders = [ "trivial2"; "edge-bit" ]; max_n = Some 4; samples = Some 3 };
      opts = Protocol.default_opts;
    };
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let back = parse_request (Protocol.request_to_json req) in
      check_bool
        ("request survives JSON: " ^ Protocol.kind_name req.Protocol.kind)
        true (back = req))
    sample_requests

let test_response_roundtrip () =
  let resp =
    {
      Protocol.id = 42;
      kind = "sweep";
      status = Protocol.Rejected;
      reason = Some "queue_full";
      result = Json.Obj [ ("ok", Json.Bool false) ];
    }
  in
  (match Protocol.response_of_json (Protocol.response_to_json resp) with
  | Ok back -> check_bool "response survives JSON" true (back = resp)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun status ->
      let r = { resp with Protocol.status; reason = None } in
      match Protocol.response_of_json (Protocol.response_to_json r) with
      | Ok back -> check_bool "status survives JSON" true (back = r)
      | Error e -> Alcotest.fail e)
    [ Protocol.Done; Protocol.Rejected; Protocol.Failed; Protocol.Expired ]

let test_event_roundtrip () =
  List.iter
    (fun body ->
      let ev = { Protocol.event_id = 9; body } in
      let json = Protocol.event_to_json ev in
      check_bool "event lines are recognizable" true (Protocol.is_event json);
      match Protocol.event_of_json json with
      | Ok back -> check_bool "event survives JSON" true (back = ev)
      | Error e -> Alcotest.fail e)
    [
      Sink.Span_start "serve/sweep";
      Sink.Span_end ("serve/sweep", 12345);
      Sink.Progress "classes 12/112";
    ];
  let resp =
    Protocol.response_to_json
      {
        Protocol.id = 1;
        kind = "ping";
        status = Protocol.Done;
        reason = None;
        result = Json.Null;
      }
  in
  check_bool "responses are not events" false (Protocol.is_event resp)

let test_unknown_fields_tolerated () =
  let json =
    Json.Obj
      [
        ("schema_version", Json.Int Protocol.schema_version);
        ("kind", Json.String "sweep");
        ("decoder", Json.String "degree-one");
        ("n", Json.Int 4);
        ("a_future_member", Json.Obj [ ("x", Json.Int 1) ]);
        ("another", Json.List [ Json.String "ignored" ]);
      ]
  in
  let req = parse_request json in
  match req.Protocol.kind with
  | Protocol.Sweep { decoder; n; strategy; early_exit; shards } ->
      check_str "decoder" "degree-one" decoder;
      check_int "n" 4 n;
      check_str "default strategy" "orderly" strategy;
      check_bool "default early_exit" false early_exit;
      check_int "default shards" 1 shards
  | _ -> Alcotest.fail "parsed to the wrong kind"

let test_schema_version_checked () =
  let mk v =
    Json.Obj
      (("kind", Json.String "ping")
       :: (match v with None -> [] | Some v -> [ ("schema_version", Json.Int v) ]))
  in
  check_bool "current version accepted" true
    (Result.is_ok (Protocol.request_of_json (mk (Some Protocol.schema_version))));
  check_bool "absent version means current" true
    (Result.is_ok (Protocol.request_of_json (mk None)));
  (match Protocol.request_of_json (mk (Some 99)) with
  | Error msg ->
      let contains_99 =
        let ok = ref false in
        String.iteri
          (fun i c ->
            if c = '9' && i + 1 < String.length msg && msg.[i + 1] = '9' then
              ok := true)
          msg;
        !ok
      in
      check_bool "error names the offending version" true contains_99
  | Ok _ -> Alcotest.fail "future schema_version must be rejected");
  check_bool "unknown kind rejected" true
    (Result.is_error
       (Protocol.request_of_json (Json.Obj [ ("kind", Json.String "dance") ])))

let test_coalesce_key () =
  let sweep progress seed =
    {
      Protocol.kind =
        Protocol.Sweep
          {
            decoder = "degree-one";
            n = 5;
            strategy = "orderly";
            early_exit = false;
            shards = 1;
          };
      opts = { Protocol.default_opts with Protocol.progress; seed };
    }
  in
  let key r =
    match Protocol.coalesce_key r with
    | Some k -> k
    | None -> Alcotest.fail "job requests must have a key"
  in
  check_str "progress is presentation, not identity"
    (key (sweep false None))
    (key (sweep true None));
  check_bool "different seeds are different jobs" true
    (key (sweep false None) <> key (sweep false (Some 3)));
  check_bool "control requests have no key" true
    (Protocol.coalesce_key
       { Protocol.kind = Protocol.Ping; opts = Protocol.default_opts }
    = None)

(* ------------------------------------------------------------------ *)
(* the job queue                                                       *)

let test_jobq_fifo_and_bound () =
  let q = Jobq.create ~capacity:2 in
  check_bool "push 1" true (Jobq.try_push q 1);
  check_bool "push 2" true (Jobq.try_push q 2);
  check_bool "push 3 refused at capacity" false (Jobq.try_push q 3);
  check_int "depth" 2 (Jobq.depth q);
  check_bool "fifo 1" true (Jobq.pop q = Some 1);
  check_bool "room again" true (Jobq.try_push q 4);
  check_bool "fifo 2" true (Jobq.pop q = Some 2);
  check_bool "fifo 4" true (Jobq.pop q = Some 4);
  check_int "drained" 0 (Jobq.depth q)

let test_jobq_zero_capacity () =
  let q = Jobq.create ~capacity:0 in
  check_bool "zero capacity refuses everything" false (Jobq.try_push q 1);
  check_int "capacity recorded" 0 (Jobq.capacity q)

let test_jobq_close () =
  let q = Jobq.create ~capacity:4 in
  ignore (Jobq.try_push q 1);
  Jobq.close q;
  check_bool "closed" true (Jobq.is_closed q);
  check_bool "push after close refused" false (Jobq.try_push q 2);
  check_bool "backlog still drains" true (Jobq.pop q = Some 1);
  check_bool "then None" true (Jobq.pop q = None);
  check_bool "None is sticky" true (Jobq.pop q = None)

let test_jobq_blocking_pop () =
  let q = Jobq.create ~capacity:1 in
  let producer =
    Thread.create
      (fun () ->
        Thread.delay 0.05;
        ignore (Jobq.try_push q 7))
      ()
  in
  check_bool "pop blocks until the producer arrives" true (Jobq.pop q = Some 7);
  Thread.join producer;
  let q2 = Jobq.create ~capacity:1 in
  let closer =
    Thread.create
      (fun () ->
        Thread.delay 0.05;
        Jobq.close q2)
      ()
  in
  check_bool "close wakes a blocked pop" true (Jobq.pop q2 = None);
  Thread.join closer

(* ------------------------------------------------------------------ *)
(* a live daemon on a temp socket                                      *)

let fresh_socket =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcp-test-%d-%d.sock" (Unix.getpid ()) !counter)

let with_server ?(capacity = 8) ?(workers = 1) f =
  let socket_path = fresh_socket () in
  let config = { (Server.default_config ~socket_path) with capacity; workers } in
  let t = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Server.wait t)
    (fun () -> f socket_path t)

let job kind = { Protocol.kind; opts = Protocol.default_opts }

let request_exn ?on_event c req =
  match Client.request ?on_event c req with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let expect_done (resp : Protocol.response) =
  if resp.Protocol.status <> Protocol.Done then
    Alcotest.fail
      (Printf.sprintf "expected ok, got %s (%s)"
         (Protocol.status_name resp.Protocol.status)
         (Option.value resp.Protocol.reason ~default:"-"));
  resp.Protocol.result

let sweep_req ?(opts = Protocol.default_opts) ?(shards = 1) decoder n =
  {
    Protocol.kind =
      Protocol.Sweep
        { decoder; n; strategy = "orderly"; early_exit = false; shards };
    opts;
  }

(* The tentpole contract: for every registry decoder, the daemon's
   sweep payload carries the same verdict and the same deterministic
   work counters as a direct in-process run — even though the daemon
   is warm from previous requests and the direct run is not. *)
let test_server_matches_direct_sweeps () =
  with_server (fun socket _t ->
      Client.with_connection socket (fun c ->
          List.iter
            (fun (key, n) ->
              let entry =
                match Lcp.Registry.find key with
                | Some e -> e
                | None -> Alcotest.fail ("registry lost " ^ key)
              in
              let result = expect_done (request_exn c (sweep_req key n)) in
              let cfg = Run_cfg.make ~jobs:1 () in
              let summary =
                Lcp.Checker.soundness_sweep ~cfg entry.Lcp.Registry.suite ~n
              in
              let direct_pass =
                Lcp.Checker.is_pass (Lcp.Checker.verdict_of_sweep summary)
              in
              check_bool (key ^ ": verdict matches direct") direct_pass
                (get_bool result [ "ok" ]);
              let c_ = summary.Lcp_engine.Sweep.counters in
              List.iter
                (fun (name, direct) ->
                  check_int
                    (Printf.sprintf "%s: %s matches direct" key name)
                    direct
                    (get_int result [ "summary_counters"; name ]))
                [
                  ("candidates", c_.Lcp_engine.Sweep.candidates);
                  ("connected", c_.Lcp_engine.Sweep.connected);
                  ("classes", c_.Lcp_engine.Sweep.classes);
                  ("dedup_hits", c_.Lcp_engine.Sweep.dedup_hits);
                  ("kept", c_.Lcp_engine.Sweep.kept);
                  ("checked", c_.Lcp_engine.Sweep.checked);
                  ("passed", c_.Lcp_engine.Sweep.passed);
                  ("violations", c_.Lcp_engine.Sweep.violations);
                ];
              check_int
                (key ^ ": labelings_checked matches direct")
                (Metrics.counter cfg.Run_cfg.metrics "labelings_checked")
                (get_int result [ "counters"; "labelings_checked" ]))
            (List.map (fun k -> (k, 4)) Lcp.Registry.keys
            @ [ ("degree-one", 5) ])))

let test_server_matches_direct_check () =
  with_server (fun socket _t ->
      Client.with_connection socket (fun c ->
          List.iter
            (fun (decoder, graph, g) ->
              let result =
                expect_done
                  (request_exn c (job (Protocol.Check { decoder; graph })))
              in
              let suite =
                (Option.get (Lcp.Registry.find decoder)).Lcp.Registry.suite
              in
              let cfg = Run_cfg.make ~jobs:1 () in
              let direct =
                Lcp.Checker.soundness_exhaustive ~cfg suite
                  [ Lcp_local.Instance.make g ]
              in
              check_bool
                (decoder ^ " on " ^ graph ^ ": soundness verdict matches")
                (Lcp.Checker.is_pass direct)
                (get_bool result [ "soundness"; "ok" ]);
              check_int
                (decoder ^ " on " ^ graph ^ ": labelings_checked matches")
                (Metrics.counter cfg.Run_cfg.metrics "labelings_checked")
                (get_int result [ "soundness"; "labelings_checked" ]))
            [
              ("degree-one", "cycle:5", Lcp_graph.Builders.cycle 5);
              ("even-cycle", "cycle:5", Lcp_graph.Builders.cycle 5);
              ("union", "complete:4", Lcp_graph.Builders.complete 4);
            ]))

let test_queue_full_rejection () =
  with_server ~capacity:0 (fun socket _t ->
      Client.with_connection socket (fun c ->
          let resp = request_exn c (sweep_req "degree-one" 4) in
          check_bool "rejected" true (resp.Protocol.status = Protocol.Rejected);
          check_bool "reason is queue_full" true
            (resp.Protocol.reason = Some "queue_full");
          (* control requests bypass the queue and still work *)
          let ping = expect_done (request_exn c (job Protocol.Ping)) in
          check_bool "ping bypasses the full queue" true
            (get_bool ping [ "ok" ])))

let test_deadline_expired () =
  with_server (fun socket _t ->
      Client.with_connection socket (fun c ->
          let opts = { Protocol.default_opts with Protocol.deadline_ms = Some 0 } in
          let resp = request_exn c (sweep_req ~opts "degree-one" 5) in
          check_bool "expired" true (resp.Protocol.status = Protocol.Expired)))

let test_bad_requests_get_error_responses () =
  with_server (fun socket _t ->
      Client.with_connection socket (fun c ->
          (* unknown decoder: runs, fails with a usage reason *)
          let resp = request_exn c (sweep_req "no-such-decoder" 4) in
          check_bool "unknown decoder is an error" true
            (resp.Protocol.status = Protocol.Failed);
          (* future schema version: refused at the parse layer *)
          match
            Client.request_json c
              (Json.Obj
                 [ ("schema_version", Json.Int 99); ("kind", Json.String "ping") ])
          with
          | Error e -> Alcotest.fail e
          | Ok j -> (
              match Json.to_str (get j [ "status" ]) with
              | Ok s -> check_str "future schema refused" "error" s
              | Error e -> Alcotest.fail e)))

let test_malformed_line_gets_error_response () =
  with_server (fun socket _t ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket);
          let oc = Unix.out_channel_of_descr fd in
          let ic = Unix.in_channel_of_descr fd in
          output_string oc "this is not json\n";
          flush oc;
          match Json.of_string (input_line ic) with
          | Error e -> Alcotest.fail e
          | Ok j ->
              (match Json.to_str (get j [ "status" ]) with
              | Ok s -> check_str "malformed line answered with error" "error" s
              | Error e -> Alcotest.fail e)))

(* Warm-cache accounting: the identical sweep repeated against the
   daemon must (a) report the same deterministic work counters, (b)
   hit the warm iso-class cache, and (c) strictly increase the
   server's serve/cache_warm_hits counter. *)
let test_warm_cache_hits () =
  (* the iso-class cache is process-global and earlier tests in this
     binary have warmed it; start this daemon genuinely cold *)
  Lcp_engine.Sweep.clear_cache ();
  Lcp_engine.Eval_cache.clear_shared ();
  with_server (fun socket t ->
      Client.with_connection socket (fun c ->
          let warm_hits () =
            Metrics.counter (Server.metrics t) "serve/cache_warm_hits"
          in
          let run () = expect_done (request_exn c (sweep_req "even-cycle" 5)) in
          let first = run () in
          let h1 = warm_hits () in
          let second = run () in
          let h2 = warm_hits () in
          let third = run () in
          let h3 = warm_hits () in
          List.iter
            (fun name ->
              let a = get_int first [ "counters"; name ] in
              check_int ("warm = cold: " ^ name) a
                (get_int second [ "counters"; name ]);
              check_int ("warm = cold (3rd): " ^ name) a
                (get_int third [ "counters"; name ]))
            Session.work_counter_names;
          check_bool "same verdict" (get_bool first [ "ok" ])
            (get_bool second [ "ok" ]);
          check_int "cold run misses the class cache" 0
            (get_int first [ "cache"; "cache_hits" ]);
          check_bool "warm run hits the class cache" true
            (get_int second [ "cache"; "cache_hits" ] > 0);
          check_bool "warm hits counted (2nd)" true (h2 > h1);
          check_bool "warm hits counted (3rd)" true (h3 > h2)))

(* Coalescing: with one worker pinned on a slow job, two further
   arrivals of one identical request share a single computation — the
   follower gets the same payload under its own id and the daemon
   counts serve/coalesced. *)
let test_coalescing () =
  with_server ~capacity:4 ~workers:1 (fun socket t ->
      let slow_opts =
        { Protocol.default_opts with Protocol.eval_cache = Some false }
      in
      let slow =
        {
          Protocol.kind =
            Protocol.Sweep
              {
                decoder = "even-cycle";
                n = 6;
                strategy = "orderly";
                early_exit = false;
                shards = 1;
              };
          opts = slow_opts;
        }
      in
      let shared = sweep_req "degree-one" 5 in
      let results = Array.make 3 None in
      let ask i req =
        Thread.create
          (fun () ->
            Client.with_connection socket (fun c ->
                results.(i) <- Some (request_exn c req)))
          ()
      in
      let t0 = ask 0 slow in
      Thread.delay 0.1;
      let t1 = ask 1 shared in
      Thread.delay 0.1;
      let t2 = ask 2 shared in
      List.iter Thread.join [ t0; t1; t2 ];
      let r i = match results.(i) with Some r -> r | None -> Alcotest.fail "no response" in
      List.iter (fun i -> ignore (expect_done (r i))) [ 0; 1; 2 ];
      check_bool "follower has its own id" true
        ((r 1).Protocol.id <> (r 2).Protocol.id);
      check_str "identical payload for primary and follower"
        (Json.to_string (r 1).Protocol.result)
        (Json.to_string (r 2).Protocol.result);
      check_bool "the daemon counted a coalesced request" true
        (Metrics.counter (Server.metrics t) "serve/coalesced" >= 1))

let test_interim_events () =
  with_server (fun socket _t ->
      Client.with_connection socket (fun c ->
          let events = ref [] in
          let opts = { Protocol.default_opts with Protocol.progress = true } in
          let result =
            expect_done
              (request_exn
                 ~on_event:(fun e -> events := e :: !events)
                 c
                 (sweep_req ~opts "degree-one" 4))
          in
          check_bool "job still answers" true (get_bool result [ "ok" ]);
          check_bool "events streamed before the response" true
            (List.length !events > 0);
          check_bool "the serve span is among them" true
            (List.exists
               (fun e ->
                 match e.Protocol.body with
                 | Sink.Span_start path | Sink.Span_end (path, _) ->
                     String.length path >= 5 && String.sub path 0 5 = "serve"
                 | Sink.Progress _ -> false)
               !events);
          (* a progress-less request on the same connection stays silent *)
          let quiet = ref 0 in
          ignore
            (expect_done
               (request_exn
                  ~on_event:(fun _ -> incr quiet)
                  c
                  (sweep_req "degree-one" 4)));
          check_int "no events without progress" 0 !quiet))

let test_server_metrics_and_shutdown () =
  let socket_path = fresh_socket () in
  let config = Server.default_config ~socket_path in
  let t = Server.start config in
  let finished = ref false in
  let waiter =
    Thread.create
      (fun () ->
        Server.wait t;
        finished := true)
      ()
  in
  Client.with_connection socket_path (fun c ->
      let m = expect_done (request_exn c (job Protocol.Metrics)) in
      check_bool "serve counters materialized" true
        (get_int m [ "counters"; "serve/requests" ] >= 0);
      check_int "nothing rejected yet" 0
        (get_int m [ "counters"; "serve/rejected" ]);
      let ok = expect_done (request_exn c (job Protocol.Shutdown)) in
      check_bool "shutdown acknowledged" true (get_bool ok [ "ok" ]));
  Thread.join waiter;
  check_bool "wait returned after shutdown request" true !finished;
  check_bool "socket file removed" false (Sys.file_exists socket_path)

let suite =
  [
    case "protocol: requests round-trip" test_request_roundtrip;
    case "protocol: responses round-trip" test_response_roundtrip;
    case "protocol: events round-trip" test_event_roundtrip;
    case "protocol: unknown fields tolerated" test_unknown_fields_tolerated;
    case "protocol: schema version checked" test_schema_version_checked;
    case "protocol: coalesce key semantics" test_coalesce_key;
    case "jobq: fifo within a bound" test_jobq_fifo_and_bound;
    case "jobq: zero capacity refuses" test_jobq_zero_capacity;
    case "jobq: close drains then refuses" test_jobq_close;
    case "jobq: pop blocks and wakes" test_jobq_blocking_pop;
    slow_case "server: sweeps match direct runs (all decoders)"
      test_server_matches_direct_sweeps;
    case "server: checks match direct runs" test_server_matches_direct_check;
    case "server: queue-full rejection" test_queue_full_rejection;
    case "server: deadline expiry" test_deadline_expired;
    case "server: bad requests answered" test_bad_requests_get_error_responses;
    case "server: malformed line answered" test_malformed_line_gets_error_response;
    slow_case "server: warm caches, identical counters" test_warm_cache_hits;
    slow_case "server: identical in-flight requests coalesce" test_coalescing;
    case "server: interim events stream" test_interim_events;
    case "server: metrics and clean shutdown" test_server_metrics_and_shutdown;
  ]
