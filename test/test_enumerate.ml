open Lcp_graph
open Helpers

let count_iter iter n =
  let count = ref 0 in
  iter n (fun _ -> incr count);
  !count

let test_counts () =
  check_int "graphs on 3" 8 (count_iter Enumerate.iter_graphs 3);
  check_int "count formula" 8 (Enumerate.count_graphs 3);
  check_int "graphs on 4" 64 (count_iter Enumerate.iter_graphs 4);
  check_int "graphs on 0" 1 (count_iter Enumerate.iter_graphs 0);
  check_int "graphs on 1" 1 (count_iter Enumerate.iter_graphs 1)

let test_connected () =
  (* labeled connected graphs: 1, 1, 1, 4, 38 for n = 0..4 *)
  check_int "connected on 3" 4 (count_iter Enumerate.iter_connected 3);
  check_int "connected on 4" 38 (count_iter Enumerate.iter_connected 4);
  let all_connected = ref true in
  Enumerate.iter_connected 4 (fun g ->
      if not (Graph.is_connected g) then all_connected := false);
  check_bool "all connected" true !all_connected

let test_up_to_iso () =
  (* connected graphs up to isomorphism: 1, 1, 2, 6, 21 for n = 1..5 *)
  check_int "iso classes n=3" 2 (List.length (Enumerate.connected_up_to_iso 3));
  check_int "iso classes n=4" 6 (List.length (Enumerate.connected_up_to_iso 4));
  check_int "iso classes n=5" 21 (List.length (Enumerate.connected_up_to_iso 5))

let test_up_to_iso_distinct () =
  let reps = Enumerate.connected_up_to_iso 4 in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  check_bool "pairwise non-isomorphic" true
    (List.for_all (fun (a, b) -> not (Graph.isomorphic a b)) (pairs reps))

let test_bipartite_split () =
  let all = Enumerate.connected_up_to_iso 4 in
  let b = Enumerate.bipartite all and nb = Enumerate.non_bipartite all in
  check_int "partition" (List.length all) (List.length b + List.length nb);
  (* non-bipartite connected on 4 nodes up to iso: C3+pendant, C4+chord
     (diamond), K4, C3 alone is n=3 — count is 3 *)
  check_int "non-bipartite classes" 3 (List.length nb)

let test_streaming_matches_list_dedup () =
  (* connected_up_to_iso streams; up_to_iso over a materialized
     mask-ordered list must pick the identical representatives *)
  let listed = ref [] in
  Enumerate.iter_connected 4 (fun g -> listed := g :: !listed);
  let via_list = Enumerate.up_to_iso (List.rev !listed) in
  let streamed = Enumerate.connected_up_to_iso 4 in
  check_int "same class count" (List.length via_list) (List.length streamed);
  check_bool "same representatives" true
    (List.for_all2 (fun a b -> Graph.equal a b) via_list streamed)

let test_classes_delegation () =
  (* this binary links Lcp_engine, so [classes] is served by the
     registered orderly generator — its contract is exact equality
     with the brute-force oracle, representatives and order included *)
  let delegated = Enumerate.classes 5 in
  let brute = Enumerate.connected_up_to_iso 5 in
  check_int "same class count" (List.length brute) (List.length delegated);
  check_bool "same representatives, same order" true
    (List.for_all2 Graph.equal brute delegated);
  let all = Enumerate.classes ~connected:false 4 in
  check_bool "disconnected classes too" true
    (List.for_all2 Graph.equal
       (Enumerate.brute_classes ~connected:false 4)
       all);
  let seen = ref 0 in
  Enumerate.iter_classes 4 (fun _ -> incr seen);
  check_int "iter_classes visits each class once" 6 !seen

let suite =
  [
    case "raw counts" test_counts;
    case "connected counts" test_connected;
    case "iso class counts" test_up_to_iso;
    case "iso classes pairwise distinct" test_up_to_iso_distinct;
    case "bipartite split" test_bipartite_split;
    case "streaming dedup matches list dedup" test_streaming_matches_list_dedup;
    case "classes delegates to the engine" test_classes_delegation;
  ]
