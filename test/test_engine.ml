(* The Lcp_engine battery: bit kernels, canonical forms, the domain
   pool, orderly generation cross-validated against the mask scan, and
   sweep determinism across jobs counts.

   The expensive n = 7 / n = 8 regressions (853 / 11,117 connected
   classes) only run when LCP_HEAVY is set: `LCP_HEAVY=1 dune runtest`. *)

open Lcp_graph
open Lcp_engine
open Helpers

(* A fresh throwaway cfg at the given width — jobs is now carried by
   [Run_cfg.t] rather than a per-call optional. *)
let cfg jobs = Lcp_obs.Run_cfg.make ~jobs ()

let heavy_enabled = Sys.getenv_opt "LCP_HEAVY" <> None

(* ------------------------------------------------------------------ *)
(* Bits                                                                *)

let test_bits_popcount () =
  let naive x =
    let c = ref 0 in
    for i = 0 to 62 do
      if x land (1 lsl i) <> 0 then incr c
    done;
    !c
  in
  check_int "popcount 0" 0 (Bits.popcount 0);
  check_int "popcount max_int" 62 (Bits.popcount max_int);
  for x = 0 to 4096 do
    check_int "popcount vs naive (low)" (naive x) (Bits.popcount x);
    let hi = x * 0x40021 lxor (x lsl 40) in
    check_int "popcount vs naive (wide)" (naive hi) (Bits.popcount hi)
  done

let test_bits_ntz_fold () =
  for i = 0 to 62 do
    check_int "ntz of a single bit" i (Bits.ntz (1 lsl i))
  done;
  check_int "ntz picks the lowest bit" 3 (Bits.ntz 0b1011000);
  let bits m = List.rev (Bits.fold_bits (fun i acc -> i :: acc) m []) in
  check_bool "fold_bits lists set bits ascending" true
    (bits 0b1011001 = [ 0; 3; 4; 6 ]);
  check_bool "fold_bits on 0" true (bits 0 = []);
  check_int "fold_bits count = popcount" (Bits.popcount 0xdeadbeef)
    (Bits.fold_bits (fun _ acc -> acc + 1) 0xdeadbeef 0)

(* ------------------------------------------------------------------ *)
(* Chunk                                                               *)

let test_chunk_plan () =
  check_int "space 4" 64 (Chunk.space 4);
  let chunks = Chunk.plan ~chunk_bits:4 5 in
  check_int "5-node space in 16-mask chunks" 64 (List.length chunks);
  let covered = ref 0 in
  List.iter (fun c -> Chunk.iter c (fun _ -> incr covered)) chunks;
  check_int "chunks cover the space exactly" (Chunk.space 5) !covered;
  check_int "one chunk for tiny spaces" 1 (List.length (Chunk.plan 1))

let test_mask_roundtrip () =
  (* every mask on 4 nodes decodes to the graph that re-encodes to it *)
  for mask = 0 to Chunk.space 4 - 1 do
    let g = Chunk.graph_of_mask 4 mask in
    check_int "mask roundtrip" mask (Chunk.mask_of_graph g);
    let adj = Chunk.adj_of_mask 4 mask in
    check_bool "adj connectivity agrees with Graph.is_connected"
      (Graph.is_connected g)
      (Chunk.is_connected_adj adj)
  done

(* ------------------------------------------------------------------ *)
(* Canon                                                               *)

let test_canon_iso_invariant () =
  (* the canonical key is constant on each isomorphism class: relabel
     every connected 5-node representative by a few permutations *)
  let perms =
    [ [| 4; 3; 2; 1; 0 |]; [| 1; 2; 3; 4; 0 |]; [| 2; 0; 4; 1; 3 |] ]
  in
  List.iter
    (fun g ->
      let k = Canon.key g in
      List.iter
        (fun p ->
          check_int "key invariant under relabeling" k
            (Canon.key (Graph.relabel g p)))
        perms)
    (Enumerate.connected_up_to_iso 5)

let test_canon_separates () =
  (* distinct classes get distinct keys: counts match the brute-force
     pairwise-isomorphism dedup *)
  let keys = Hashtbl.create 64 in
  Enumerate.iter_graphs 5 (fun g ->
      if Graph.is_connected g then Hashtbl.replace keys (Canon.key g) ());
  check_int "canonical keys count the iso classes" 21 (Hashtbl.length keys)

let test_canonical_graph () =
  let c5 = Builders.cycle 5 in
  let shuffled = Graph.relabel c5 [| 3; 0; 4; 1; 2 |] in
  check_graph "canonical representative is stable"
    (Canon.canonical_graph c5)
    (Canon.canonical_graph shuffled);
  check_bool "representative stays isomorphic" true
    (Graph.isomorphic c5 (Canon.canonical_graph c5))

let test_min_mask_exact () =
  (* min_mask is the least labeled mask of the class: verify against a
     literal scan of the whole 4-node space *)
  let least = Hashtbl.create 16 in
  for mask = 0 to Chunk.space 4 - 1 do
    let key = Canon.key_adj ~n:4 (Chunk.adj_of_mask 4 mask) in
    if not (Hashtbl.mem least key) then Hashtbl.replace least key mask
  done;
  for mask = 0 to Chunk.space 4 - 1 do
    let adj = Chunk.adj_of_mask 4 mask in
    let key = Canon.key_adj ~n:4 adj in
    check_int "min_mask = least member of the class"
      (Hashtbl.find least key)
      (Canon.min_mask ~n:4 adj)
  done;
  (* an [init] seed from a class member must not change the result *)
  let p3 = Chunk.adj_of_mask 3 (Canon.canonical_mask ~n:3 (Chunk.adj_of_mask 3 0b110)) in
  check_int "init seed is only a bound"
    (Canon.min_mask ~n:3 (Chunk.adj_of_mask 3 0b110))
    (Canon.min_mask ~init:(Chunk.mask_of_graph (Chunk.graph_of_mask 3 0b110)) ~n:3 p3)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_run_matches_sequential () =
  let f i = (i * i) + 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "run jobs=%d" jobs)
        (Array.init 100 f)
        (Pool.run ~jobs 100 f))
    [ 1; 2; 4 ];
  check_int "empty run" 0 (Array.length (Pool.run ~jobs:4 0 f))

let test_pool_search_minimal () =
  (* matches at 17, 23, 61: every jobs count must report 17 *)
  let f i = if i = 17 || i = 23 || i = 61 then Some (i * 10) else None in
  List.iter
    (fun jobs ->
      match Pool.search ~jobs 100 f with
      | Some (17, 170) -> ()
      | Some (i, _) ->
          Alcotest.failf "search jobs=%d returned index %d, wanted 17" jobs i
      | None -> Alcotest.failf "search jobs=%d found nothing" jobs)
    [ 1; 2; 4 ];
  check_bool "no match" true (Pool.search ~jobs:4 50 (fun _ -> None) = None)

let test_pool_exception_propagates () =
  let boom i = if i = 3 then failwith "boom" else i in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "exception re-raised at jobs=%d" jobs)
        true
        (try
           ignore (Pool.run ~jobs 8 boom);
           false
         with Failure _ -> true))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Orderly vs mask scan: the cross-validation core                     *)

(* OEIS A001349 (connected) and A000088 (all) — the pins the
   reproduction's exhaustive frontier hangs on. *)
let connected_counts = [ (1, 1); (2, 1); (3, 2); (4, 6); (5, 21); (6, 112) ]
let all_counts = [ (1, 1); (2, 2); (3, 4); (4, 11); (5, 34); (6, 156) ]

let classes_with strategy ~connected n =
  Sweep.clear_cache ();
  Sweep.iso_classes ~cfg:(cfg 2) ~strategy ~connected n

let test_strategies_agree () =
  List.iter
    (fun connected ->
      for n = 1 to 6 do
        let o = classes_with Sweep.Orderly ~connected n in
        let m = classes_with Sweep.Mask_scan ~connected n in
        check_int
          (Printf.sprintf "class count n=%d connected=%b" n connected)
          (List.length m) (List.length o);
        List.iter2
          (fun a b -> check_graph "identical representative" a b)
          o m
      done)
    [ true; false ];
  Sweep.clear_cache ()

let test_orderly_oeis_counts () =
  List.iter
    (fun (n, expected) ->
      check_int
        (Printf.sprintf "A001349 n=%d" n)
        expected
        (List.length (classes_with Sweep.Orderly ~connected:true n)))
    connected_counts;
  List.iter
    (fun (n, expected) ->
      check_int
        (Printf.sprintf "A000088 n=%d" n)
        expected
        (List.length (classes_with Sweep.Orderly ~connected:false n)))
    all_counts;
  Sweep.clear_cache ()

let test_orderly_deterministic_in_jobs () =
  let gen jobs =
    let masks, t = Orderly.generate ~jobs ~connected:true 6 in
    (masks, t.Orderly.candidates, t.Orderly.dedup_hits, t.Orderly.classes)
  in
  let base = gen 1 in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "orderly output bit-identical at jobs=%d" jobs)
        true
        (gen jobs = base))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Sweep: cached classes                                               *)

let test_iso_classes_counts () =
  (* 1, 1, 2, 6, 21, 112 connected classes on n = 1..6 *)
  List.iter
    (fun (n, expected) ->
      check_int
        (Printf.sprintf "connected classes n=%d" n)
        expected
        (List.length (Sweep.iso_classes ~cfg:(cfg 2) n)))
    connected_counts;
  (* including disconnected graphs: 11 classes on 4 nodes *)
  check_int "all classes n=4" 11
    (List.length (Sweep.iso_classes ~cfg:(cfg 2) ~connected:false 4))

let test_iso_classes_deterministic () =
  Sweep.clear_cache ();
  let seq = Sweep.iso_classes ~cfg:(cfg 1) 5 in
  Sweep.clear_cache ();
  let par = Sweep.iso_classes ~cfg:(cfg 4) 5 in
  check_int "same class count" (List.length seq) (List.length par);
  List.iter2 (fun a b -> check_graph "identical representative" a b) seq par

let test_iso_classes_agree_with_enumerate () =
  (* same classes as the brute-force path — representatives and order
     included, which is the [Enumerate.classes] delegation contract *)
  let engine = Sweep.iso_classes ~cfg:(cfg 2) 4 in
  let brute = Enumerate.connected_up_to_iso 4 in
  check_int "class count vs Enumerate" (List.length brute) (List.length engine);
  List.iter2 (fun a b -> check_graph "identical representative" a b) brute engine

let test_class_cache_hits () =
  Sweep.clear_cache ();
  ignore (Sweep.iso_classes ~cfg:(cfg 1) 5);
  let h0, m0 = Sweep.cache_stats () in
  check_int "first sweep misses" 1 m0;
  check_int "first sweep hits" 0 h0;
  ignore (Sweep.iso_classes ~cfg:(cfg 4) 5);
  ignore (Sweep.iso_classes ~cfg:(cfg 1) 5);
  let h1, m1 = Sweep.cache_stats () in
  check_int "repeat sweeps hit" 2 (h1 - h0);
  check_int "no recompute" m0 m1;
  (* the two strategies are distinct cache entries *)
  ignore (Sweep.iso_classes ~cfg:(cfg 1) ~strategy:Sweep.Mask_scan 5);
  let _, m2 = Sweep.cache_stats () in
  check_int "strategy is part of the cache key" (m1 + 1) m2;
  Sweep.clear_cache ()

(* ------------------------------------------------------------------ *)
(* Sweep: verdict determinism                                          *)

(* A seeded soundness-violating "decoder": flags any graph containing a
   triangle through node 0 .. i.e. an isomorphism-invariant predicate
   with both outcomes present on 5 nodes. *)
let has_triangle g =
  List.exists
    (fun (u, v) ->
      List.exists
        (fun w -> Graph.mem_edge g u w && Graph.mem_edge g v w)
        (Graph.nodes g))
    (Graph.edges g)

let violation_check g = if has_triangle g then Some (Graph.size g) else None

let test_sweep_deterministic_across_jobs () =
  let run jobs mode strategy =
    Sweep.run ~cfg:(cfg jobs) ~strategy ~mode ~n:5 ~check:violation_check ()
  in
  let base = run 1 Sweep.Exhaustive Sweep.Orderly in
  check_bool "violations exist on 5 nodes" true
    (base.Sweep.counterexample <> None);
  List.iter
    (fun jobs ->
      List.iter
        (fun mode ->
          List.iter
            (fun strategy ->
              let s = run jobs mode strategy in
              check_int "same classes" base.Sweep.counters.Sweep.classes
                s.Sweep.counters.Sweep.classes;
              match (base.Sweep.counterexample, s.Sweep.counterexample) with
              | Some (g, c), Some (g', c') ->
                  check_graph "identical counterexample graph" g g';
                  check_int "identical counterexample payload" c c'
              | _ -> Alcotest.fail "verdict flipped across jobs")
            [ Sweep.Orderly; Sweep.Mask_scan ])
        [ Sweep.Exhaustive; Sweep.Search_counterexample ])
    [ 1; 2; 4 ]

let test_sweep_clean_space () =
  (* no violation: every mode and jobs count agrees on the verdict and
     the exhaustive counters *)
  let s = Sweep.run ~cfg:(cfg 4) ~n:5 ~check:(fun _ -> None) () in
  check_bool "no counterexample" true (s.Sweep.counterexample = None);
  check_int "all classes accepted" s.Sweep.counters.Sweep.kept
    s.Sweep.counters.Sweep.passed;
  let t =
    Sweep.run ~cfg:(cfg 4) ~mode:Sweep.Search_counterexample ~n:5
      ~check:(fun _ -> None) ()
  in
  check_bool "search agrees" true (t.Sweep.counterexample = None)

let test_sweep_keep_filter () =
  (* keep = bipartite only: counterexamples (triangles) all filtered *)
  let s =
    Sweep.run ~cfg:(cfg 2) ~n:5 ~keep:Coloring.is_bipartite ~check:violation_check ()
  in
  check_bool "bipartite classes have no triangles" true
    (s.Sweep.counterexample = None);
  check_bool "filter dropped classes" true
    (s.Sweep.counters.Sweep.kept < s.Sweep.counters.Sweep.classes)

(* ------------------------------------------------------------------ *)
(* sharding and checkpoints                                            *)

let test_shard_partition () =
  (* record which classes each shard actually checks: the K slices must
     partition the unsharded stream exactly, and each class must land
     on the shard shard_of_key names *)
  let collect ?shard () =
    let seen = ref [] in
    ignore
      (Sweep.run ~cfg:(cfg 1) ?shard ~n:6
         ~check:(fun g ->
           seen := Chunk.wide_mask_of_graph g :: !seen;
           None)
         ());
    List.sort compare !seen
  in
  let full = collect () in
  let k = 3 in
  let parts = List.init k (fun i -> collect ~shard:(i, k) ()) in
  check_bool "shards union to the full stream" true
    (List.sort compare (List.concat parts) = full);
  check_int "shards are pairwise disjoint" (List.length full)
    (List.fold_left (fun a p -> a + List.length p) 0 parts);
  check_bool "no shard is empty at n=6 / K=3" true
    (List.for_all (fun p -> p <> []) parts);
  List.iteri
    (fun i p ->
      List.iter
        (fun key ->
          check_int "shard_of_key owns its classes" i
            (Sweep.shard_of_key ~shards:k key))
        p)
    parts;
  (* shard counters are jobs-invariant, like everything else *)
  List.init k Fun.id
  |> List.iter (fun i ->
         let s1 = Sweep.run ~cfg:(cfg 1) ~shard:(i, k) ~n:6 ~check:violation_check () in
         let s4 = Sweep.run ~cfg:(cfg 4) ~shard:(i, k) ~n:6 ~check:violation_check () in
         check_bool "shard counters jobs-invariant" true
           (s1.Sweep.counters = s4.Sweep.counters))

let test_shard_out_of_range () =
  List.iter
    (fun shard ->
      Alcotest.check_raises "shard validation" (Invalid_argument "Sweep.run: shard index out of range")
        (fun () ->
          ignore (Sweep.run ~shard ~n:4 ~check:(fun _ -> None) ())))
    [ (2, 2); (-1, 2); (0, 0) ]

(* One checkpointed sweep killed mid-stream (the check raises), then
   resumed to completion: the final checkpoint must be bit-identical
   to an uninterrupted run's, and the resumed run's metrics must cover
   the whole logical sweep (resumed credit + new work). *)
let test_checkpoint_kill_resume () =
  let tmp suffix = Filename.temp_file "lcp_ck" suffix in
  let ref_path = tmp "_ref.json" and path = tmp ".json" in
  let policy p resume = { Checkpoint.path = p; resume; tag = "ck-test" } in
  let run_ck p resume jobs check =
    let c = cfg jobs in
    let s =
      Sweep.run ~cfg:c ~checkpoint:(policy p resume) ~n:6
        ~check:(fun g ->
          Lcp_obs.Run_cfg.count c "labelings_checked";
          check g)
        ()
    in
    (s, Lcp_obs.Metrics.counter c.Lcp_obs.Run_cfg.metrics "labelings_checked")
  in
  Fun.protect
    ~finally:(fun () -> List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ ref_path; path ])
    (fun () ->
      (* uninterrupted reference *)
      let s_ref, m_ref = run_ck ref_path false 2 violation_check in
      check_bool "reference finds violations" true
        (s_ref.Sweep.counterexample <> None);
      (* kill: the check raises partway into the second chunk *)
      let calls = ref 0 in
      let exception Killed in
      (try
         ignore
           (run_ck path false 1 (fun g ->
                incr calls;
                if !calls > 40 then raise Killed;
                violation_check g))
       with Killed -> ());
      (match Checkpoint.load path with
      | Error msg -> Alcotest.fail msg
      | Ok c ->
          check_bool "killed checkpoint is incomplete" false
            c.Checkpoint.complete;
          check_bool "killed checkpoint made progress" true
            (c.Checkpoint.completed > 0));
      (* resume to completion *)
      let s_res, m_res = run_ck path true 2 violation_check in
      check_bool "summaries identical" true
        (s_ref.Sweep.counters = s_res.Sweep.counters
        && s_ref.Sweep.counterexample = s_res.Sweep.counterexample);
      check_int "metrics cover the logical sweep" m_ref m_res;
      (* the on-disk checkpoints are bit-identical *)
      match (Checkpoint.load ref_path, Checkpoint.load path) with
      | Ok a, Ok b -> check_bool "checkpoints bit-identical" true (a = b)
      | _ -> Alcotest.fail "final checkpoints unreadable")

let test_checkpoint_rejects_search_mode () =
  Alcotest.check_raises "checkpoint mode validation"
    (Invalid_argument "Sweep.run: checkpoints require Exhaustive mode")
    (fun () ->
      ignore
        (Sweep.run ~mode:Sweep.Search_counterexample
           ~checkpoint:{ Checkpoint.path = "/nonexistent"; resume = false; tag = "x" }
           ~n:4 ~check:(fun _ -> None) ()))

let test_checkpoint_merge_validation () =
  (* merge is picky: wrong shard sets and incomplete shards refuse *)
  let path = Filename.temp_file "lcp_ck" "_m.json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ignore
        (Sweep.run
           ~checkpoint:{ Checkpoint.path; resume = false; tag = "m" }
           ~shard:(0, 2) ~n:5 ~check:(fun _ -> None) ());
      match Checkpoint.load path with
      | Error msg -> Alcotest.fail msg
      | Ok c0 ->
          (match Checkpoint.merge [ c0 ] with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "merge accepted a missing shard");
          (match Checkpoint.merge [ c0; { c0 with Checkpoint.complete = false; shard = 1 } ] with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "merge accepted an incomplete shard");
          (match Checkpoint.merge [ c0; { c0 with Checkpoint.shard = 1 } ] with
          | Ok m ->
              check_int "merged kept sums" (2 * c0.Checkpoint.kept)
                m.Checkpoint.kept
          | Error msg -> Alcotest.fail msg))

(* ------------------------------------------------------------------ *)
(* heavy regressions: n = 7, n = 8                                     *)

let test_n7_classes () =
  if not heavy_enabled then ()
  else begin
    Sweep.clear_cache ();
    let s = Sweep.run ~n:7 ~check:(fun _ -> None) () in
    check_int "853 connected classes on 7 nodes (orderly)" 853
      s.Sweep.counters.Sweep.classes;
    let m =
      Sweep.run ~strategy:Sweep.Mask_scan ~n:7 ~check:(fun _ -> None) ()
    in
    check_int "853 connected classes on 7 nodes (mask scan)" 853
      m.Sweep.counters.Sweep.classes;
    check_int "2^21 candidates under the mask scan" (Chunk.space 7)
      m.Sweep.counters.Sweep.candidates;
    check_bool "orderly examined far fewer candidates" true
      (s.Sweep.counters.Sweep.candidates * 10 < m.Sweep.counters.Sweep.candidates);
    (* identical listings at the old frontier *)
    let o7 = Sweep.iso_classes 7 in
    let m7 = Sweep.iso_classes ~strategy:Sweep.Mask_scan 7 in
    List.iter2 (fun a b -> check_graph "identical n=7 representative" a b) o7 m7;
    Sweep.clear_cache ()
  end

let test_n8_frontier () =
  (* the new frontier: out of reach for the mask scan (2^28 masks),
     directly generated by orderly augmentation *)
  if not heavy_enabled then ()
  else begin
    Sweep.clear_cache ();
    check_int "11117 connected classes on 8 nodes" 11117
      (List.length (Sweep.iso_classes ~cfg:(cfg 0) 8));
    check_int "12346 classes on 8 nodes" 12346
      (List.length (Sweep.iso_classes ~cfg:(cfg 0) ~connected:false 8));
    Sweep.clear_cache ()
  end

let test_n9_frontier () =
  (* the orbit-era frontier: 261,080 connected classes on 9 nodes
     (OEIS A001349), far past the mask scan's 30-bit cap — only the
     orderly generator (and the wide class keys) get here *)
  if not heavy_enabled then ()
  else begin
    Sweep.clear_cache ();
    check_int "261080 connected classes on 9 nodes" 261_080
      (List.length (Sweep.iso_classes ~cfg:(cfg 0) 9));
    Sweep.clear_cache ()
  end

let suite =
  [
    case "bits popcount" test_bits_popcount;
    case "bits ntz / fold_bits" test_bits_ntz_fold;
    case "chunk plan covers the space" test_chunk_plan;
    case "mask decode/encode roundtrip" test_mask_roundtrip;
    case "canonical key is iso-invariant" test_canon_iso_invariant;
    case "canonical key separates classes" test_canon_separates;
    case "canonical representative" test_canonical_graph;
    case "min_mask is the least class member" test_min_mask_exact;
    case "pool run = sequential" test_pool_run_matches_sequential;
    case "pool search returns minimal match" test_pool_search_minimal;
    case "pool propagates exceptions" test_pool_exception_propagates;
    case "orderly = mask scan on n<=6" test_strategies_agree;
    case "orderly matches OEIS counts" test_orderly_oeis_counts;
    case "orderly deterministic in jobs" test_orderly_deterministic_in_jobs;
    case "iso-class counts n<=6" test_iso_classes_counts;
    case "iso classes deterministic in jobs" test_iso_classes_deterministic;
    case "iso classes agree with Enumerate" test_iso_classes_agree_with_enumerate;
    case "class cache hits across sweeps" test_class_cache_hits;
    case "sweep verdicts deterministic in jobs" test_sweep_deterministic_across_jobs;
    case "sweep on a clean space" test_sweep_clean_space;
    case "sweep keep filter" test_sweep_keep_filter;
    case "shards partition the class stream" test_shard_partition;
    case "shard validation" test_shard_out_of_range;
    slow_case "checkpoint kill + resume = uninterrupted" test_checkpoint_kill_resume;
    case "checkpoint rejects search mode" test_checkpoint_rejects_search_mode;
    case "checkpoint merge validation" test_checkpoint_merge_validation;
    slow_case "853 classes on n=7 (LCP_HEAVY)" test_n7_classes;
    slow_case "11117 classes on n=8 (LCP_HEAVY)" test_n8_frontier;
    slow_case "261080 classes on n=9 (LCP_HEAVY)" test_n9_frontier;
  ]
