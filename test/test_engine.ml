(* The Lcp_engine battery: canonical forms, the domain pool, cached
   iso-class enumeration, and sweep determinism across jobs counts.

   The expensive n = 7 regression (853 connected classes) only runs
   when LCP_HEAVY is set: `LCP_HEAVY=1 dune runtest`. *)

open Lcp_graph
open Lcp_engine
open Helpers

(* A fresh throwaway cfg at the given width — jobs is now carried by
   [Run_cfg.t] rather than a per-call optional. *)
let cfg jobs = Lcp_obs.Run_cfg.make ~jobs ()

let heavy_enabled = Sys.getenv_opt "LCP_HEAVY" <> None

(* ------------------------------------------------------------------ *)
(* Chunk                                                               *)

let test_chunk_plan () =
  check_int "space 4" 64 (Chunk.space 4);
  let chunks = Chunk.plan ~chunk_bits:4 5 in
  check_int "5-node space in 16-mask chunks" 64 (List.length chunks);
  let covered = ref 0 in
  List.iter (fun c -> Chunk.iter c (fun _ -> incr covered)) chunks;
  check_int "chunks cover the space exactly" (Chunk.space 5) !covered;
  check_int "one chunk for tiny spaces" 1 (List.length (Chunk.plan 1))

let test_mask_roundtrip () =
  (* every mask on 4 nodes decodes to the graph that re-encodes to it *)
  for mask = 0 to Chunk.space 4 - 1 do
    let g = Chunk.graph_of_mask 4 mask in
    check_int "mask roundtrip" mask (Chunk.mask_of_graph g);
    let adj = Chunk.adj_of_mask 4 mask in
    check_bool "adj connectivity agrees with Graph.is_connected"
      (Graph.is_connected g)
      (Chunk.is_connected_adj adj)
  done

(* ------------------------------------------------------------------ *)
(* Canon                                                               *)

let test_canon_iso_invariant () =
  (* the canonical key is constant on each isomorphism class: relabel
     every connected 5-node representative by a few permutations *)
  let perms =
    [ [| 4; 3; 2; 1; 0 |]; [| 1; 2; 3; 4; 0 |]; [| 2; 0; 4; 1; 3 |] ]
  in
  List.iter
    (fun g ->
      let k = Canon.key g in
      List.iter
        (fun p ->
          check_bool "key invariant under relabeling" true
            (String.equal k (Canon.key (Graph.relabel g p))))
        perms)
    (Enumerate.connected_up_to_iso 5)

let test_canon_separates () =
  (* distinct classes get distinct keys: counts match the brute-force
     pairwise-isomorphism dedup *)
  let keys = Hashtbl.create 64 in
  Enumerate.iter_graphs 5 (fun g ->
      if Graph.is_connected g then Hashtbl.replace keys (Canon.key g) ());
  check_int "canonical keys count the iso classes" 21 (Hashtbl.length keys)

let test_canonical_graph () =
  let c5 = Builders.cycle 5 in
  let shuffled = Graph.relabel c5 [| 3; 0; 4; 1; 2 |] in
  check_graph "canonical representative is stable"
    (Canon.canonical_graph c5)
    (Canon.canonical_graph shuffled);
  check_bool "representative stays isomorphic" true
    (Graph.isomorphic c5 (Canon.canonical_graph c5))

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_run_matches_sequential () =
  let f i = (i * i) + 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "run jobs=%d" jobs)
        (Array.init 100 f)
        (Pool.run ~jobs 100 f))
    [ 1; 2; 4 ];
  check_int "empty run" 0 (Array.length (Pool.run ~jobs:4 0 f))

let test_pool_search_minimal () =
  (* matches at 17, 23, 61: every jobs count must report 17 *)
  let f i = if i = 17 || i = 23 || i = 61 then Some (i * 10) else None in
  List.iter
    (fun jobs ->
      match Pool.search ~jobs 100 f with
      | Some (17, 170) -> ()
      | Some (i, _) ->
          Alcotest.failf "search jobs=%d returned index %d, wanted 17" jobs i
      | None -> Alcotest.failf "search jobs=%d found nothing" jobs)
    [ 1; 2; 4 ];
  check_bool "no match" true (Pool.search ~jobs:4 50 (fun _ -> None) = None)

let test_pool_exception_propagates () =
  let boom i = if i = 3 then failwith "boom" else i in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "exception re-raised at jobs=%d" jobs)
        true
        (try
           ignore (Pool.run ~jobs 8 boom);
           false
         with Failure _ -> true))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Sweep: cached classes                                               *)

let test_iso_classes_counts () =
  (* 1, 1, 2, 6, 21, 112 connected classes on n = 1..6 *)
  List.iter
    (fun (n, expected) ->
      check_int
        (Printf.sprintf "connected classes n=%d" n)
        expected
        (List.length (Sweep.iso_classes ~cfg:(cfg 2) n)))
    [ (1, 1); (2, 1); (3, 2); (4, 6); (5, 21); (6, 112) ];
  (* including disconnected graphs: 11 classes on 4 nodes *)
  check_int "all classes n=4" 11
    (List.length (Sweep.iso_classes ~cfg:(cfg 2) ~connected:false 4))

let test_iso_classes_deterministic () =
  Sweep.clear_cache ();
  let seq = Sweep.iso_classes ~cfg:(cfg 1) 5 in
  Sweep.clear_cache ();
  let par = Sweep.iso_classes ~cfg:(cfg 4) 5 in
  check_int "same class count" (List.length seq) (List.length par);
  List.iter2 (fun a b -> check_graph "identical representative" a b) seq par

let test_iso_classes_agree_with_enumerate () =
  (* same classes as the brute-force path, up to isomorphism *)
  let engine = Sweep.iso_classes ~cfg:(cfg 2) 4 in
  let brute = Enumerate.connected_up_to_iso 4 in
  check_int "class count vs Enumerate" (List.length brute) (List.length engine);
  List.iter
    (fun g ->
      check_bool "class represented" true
        (List.exists (Graph.isomorphic g) brute))
    engine

let test_class_cache_hits () =
  Sweep.clear_cache ();
  ignore (Sweep.iso_classes ~cfg:(cfg 1) 5);
  let h0, m0 = Sweep.cache_stats () in
  check_int "first sweep misses" 1 m0;
  check_int "first sweep hits" 0 h0;
  ignore (Sweep.iso_classes ~cfg:(cfg 4) 5);
  ignore (Sweep.iso_classes ~cfg:(cfg 1) 5);
  let h1, m1 = Sweep.cache_stats () in
  check_int "repeat sweeps hit" 2 (h1 - h0);
  check_int "no recompute" m0 m1

(* ------------------------------------------------------------------ *)
(* Sweep: verdict determinism                                          *)

(* A seeded soundness-violating "decoder": flags any graph containing a
   triangle through node 0 .. i.e. an isomorphism-invariant predicate
   with both outcomes present on 5 nodes. *)
let has_triangle g =
  List.exists
    (fun (u, v) ->
      List.exists
        (fun w -> Graph.mem_edge g u w && Graph.mem_edge g v w)
        (Graph.nodes g))
    (Graph.edges g)

let violation_check g = if has_triangle g then Some (Graph.size g) else None

let test_sweep_deterministic_across_jobs () =
  let run jobs mode =
    Sweep.run ~cfg:(cfg jobs) ~mode ~n:5 ~check:violation_check ()
  in
  let base = run 1 Sweep.Exhaustive in
  check_bool "violations exist on 5 nodes" true
    (base.Sweep.counterexample <> None);
  List.iter
    (fun jobs ->
      List.iter
        (fun mode ->
          let s = run jobs mode in
          check_int "same classes" base.Sweep.counters.Sweep.classes
            s.Sweep.counters.Sweep.classes;
          match (base.Sweep.counterexample, s.Sweep.counterexample) with
          | Some (g, c), Some (g', c') ->
              check_graph "identical counterexample graph" g g';
              check_int "identical counterexample payload" c c'
          | _ -> Alcotest.fail "verdict flipped across jobs")
        [ Sweep.Exhaustive; Sweep.Search_counterexample ])
    [ 1; 2; 4 ]

let test_sweep_clean_space () =
  (* no violation: every mode and jobs count agrees on the verdict and
     the exhaustive counters *)
  let s = Sweep.run ~cfg:(cfg 4) ~n:5 ~check:(fun _ -> None) () in
  check_bool "no counterexample" true (s.Sweep.counterexample = None);
  check_int "all classes accepted" s.Sweep.counters.Sweep.kept
    s.Sweep.counters.Sweep.passed;
  let t =
    Sweep.run ~cfg:(cfg 4) ~mode:Sweep.Search_counterexample ~n:5
      ~check:(fun _ -> None) ()
  in
  check_bool "search agrees" true (t.Sweep.counterexample = None)

let test_sweep_keep_filter () =
  (* keep = bipartite only: counterexamples (triangles) all filtered *)
  let s =
    Sweep.run ~cfg:(cfg 2) ~n:5 ~keep:Coloring.is_bipartite ~check:violation_check ()
  in
  check_bool "bipartite classes have no triangles" true
    (s.Sweep.counterexample = None);
  check_bool "filter dropped classes" true
    (s.Sweep.counters.Sweep.kept < s.Sweep.counters.Sweep.classes)

(* ------------------------------------------------------------------ *)
(* heavy regression: n = 7                                             *)

let test_n7_classes () =
  if not heavy_enabled then ()
  else begin
    let s = Sweep.run ~n:7 ~check:(fun _ -> None) () in
    check_int "853 connected classes on 7 nodes" 853
      s.Sweep.counters.Sweep.classes;
    check_int "2^21 masks scanned" (Chunk.space 7) s.Sweep.counters.Sweep.scanned
  end

let suite =
  [
    case "chunk plan covers the space" test_chunk_plan;
    case "mask decode/encode roundtrip" test_mask_roundtrip;
    case "canonical key is iso-invariant" test_canon_iso_invariant;
    case "canonical key separates classes" test_canon_separates;
    case "canonical representative" test_canonical_graph;
    case "pool run = sequential" test_pool_run_matches_sequential;
    case "pool search returns minimal match" test_pool_search_minimal;
    case "pool propagates exceptions" test_pool_exception_propagates;
    case "iso-class counts n<=6" test_iso_classes_counts;
    case "iso classes deterministic in jobs" test_iso_classes_deterministic;
    case "iso classes agree with Enumerate" test_iso_classes_agree_with_enumerate;
    case "class cache hits across sweeps" test_class_cache_hits;
    case "sweep verdicts deterministic in jobs" test_sweep_deterministic_across_jobs;
    case "sweep on a clean space" test_sweep_clean_space;
    case "sweep keep filter" test_sweep_keep_filter;
    slow_case "853 classes on n=7 (LCP_HEAVY)" test_n7_classes;
  ]
