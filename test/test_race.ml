(* PR-8 concurrency sanitizer: the instrumented sync layer's event
   contract, the happens-before and lock-order analyses on hand-built
   traces, the deliberately broken defect doubles (the detector must
   fire), the shipped subsystems under seeded perturbation (the
   detector must stay silent while the scenarios' own FIFO / bound /
   lease-exclusivity invariants hold), and same-seed report
   determinism. *)

open Helpers
module Sync = Lcp_obs.Sync
module Finding = Lcp_race.Finding
module Hb = Lcp_race.Hb
module Lockgraph = Lcp_race.Lockgraph
module Scenario = Lcp_race.Scenario
module Race = Lcp_race.Race

let scenario name =
  match Scenario.find name with
  | Some s -> s
  | None -> Alcotest.fail ("scenario registry lost " ^ name)

let kinds findings = List.map (fun f -> f.Finding.kind) findings

(* ------------------------------------------------------------------ *)
(* the sync layer itself                                               *)

let test_disarmed_is_silent () =
  check_bool "disarmed by default" false (Sync.armed ());
  let m = Sync.mutex "test/silent" in
  let a = Sync.A.make "test/silent.a" 0 in
  Sync.with_lock m (fun () -> Sync.A.incr a);
  check_int "atomic works disarmed" 1 (Sync.A.get a);
  Sync.arm ();
  let trace = Sync.disarm () in
  check_int "nothing recorded while disarmed" 0 (Array.length trace)

let test_with_lock_exception_safe () =
  let m = Sync.mutex "test/exn" in
  (try Sync.with_lock m (fun () -> failwith "boom") with Failure _ -> ());
  (* the lock must have been released on the exception path *)
  check_bool "reacquirable" true (Sync.with_lock m (fun () -> true))

let test_trace_order_contract () =
  Sync.arm ();
  let m = Sync.mutex "test/order" in
  let a = Sync.A.make "test/order.a" 0 in
  Sync.with_lock m (fun () -> Sync.A.incr a);
  ignore (Sync.A.get a);
  let trace = Sync.disarm () in
  let ops = Array.to_list (Array.map (fun e -> e.Sync.op) trace) in
  check_bool "acquire/awrite/release/aread"
    true
    (ops = [ Sync.Acquire; Sync.A_write; Sync.Release; Sync.A_read ]);
  Array.iteri
    (fun i e -> check_int "seq is the array index" i e.Sync.seq)
    trace;
  check_bool "labels preserved" true (trace.(0).Sync.label = "test/order")

let test_spawn_join_edges () =
  Sync.arm ();
  let a = Sync.A.make "test/spawned.a" 0 in
  let h = Sync.spawn "test/child" (fun () -> Sync.A.incr a) in
  Sync.join h;
  let trace = Sync.disarm () in
  let find op =
    match Array.find_opt (fun e -> e.Sync.op = op) trace with
    | Some e -> e.Sync.seq
    | None -> Alcotest.fail ("missing " ^ Sync.op_name op)
  in
  check_bool "spawn before begin" true (find Sync.Spawn < find Sync.Begin);
  check_bool "begin before end" true (find Sync.Begin < find Sync.End);
  check_bool "end before join" true (find Sync.End < find Sync.Join)

let test_spawn_reraises () =
  let h = Sync.spawn "test/failing-child" (fun () -> failwith "child-boom") in
  match Sync.join h with
  | () -> Alcotest.fail "child exception was swallowed"
  | exception Failure msg -> check_bool "child exception" true (msg = "child-boom")

(* ------------------------------------------------------------------ *)
(* analyses on hand-built traces                                       *)

let ev seq thr op obj ?(arg = -1) label =
  { Sync.seq; dom = 0; thr; op; obj; arg; label }

let test_hb_flags_unsynchronized () =
  let trace =
    [|
      ev 0 1 Sync.V_write 100 "x";
      ev 1 2 Sync.V_write 100 "x";
    |]
  in
  match Hb.analyze ~scenario:"unit" trace with
  | [ f ] ->
      check_bool "data race" true (f.Finding.kind = Finding.Data_race);
      check_bool "subject is the var label" true (f.Finding.subject = "x")
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs))

let test_hb_lock_synchronizes () =
  let trace =
    [|
      ev 0 1 Sync.Acquire 50 "m";
      ev 1 1 Sync.V_write 100 "x";
      ev 2 1 Sync.Release 50 "m";
      ev 3 2 Sync.Acquire 50 "m";
      ev 4 2 Sync.V_write 100 "x";
      ev 5 2 Sync.Release 50 "m";
    |]
  in
  check_int "lock-ordered writes are clean" 0
    (List.length (Hb.analyze ~scenario:"unit" trace))

let test_hb_atomic_synchronizes () =
  (* message-passing via an atomic flag: write x, publish flag;
     consume flag, read x *)
  let trace =
    [|
      ev 0 1 Sync.V_write 100 "x";
      ev 1 1 Sync.A_write 60 "flag";
      ev 2 2 Sync.A_read 60 "flag";
      ev 3 2 Sync.V_read 100 "x";
    |]
  in
  check_int "atomic publish is clean" 0
    (List.length (Hb.analyze ~scenario:"unit" trace));
  (* without the flag hop the same accesses race *)
  let racy = [| ev 0 1 Sync.V_write 100 "x"; ev 1 2 Sync.V_read 100 "x" |] in
  check_int "without the hop it races" 1
    (List.length (Hb.analyze ~scenario:"unit" racy))

let test_hb_spawn_edge () =
  let trace =
    [|
      ev 0 1 Sync.V_write 100 "x";
      ev 1 1 Sync.Spawn 70 "child";
      ev 2 2 Sync.Begin 70 "child";
      ev 3 2 Sync.V_read 100 "x";
      ev 4 2 Sync.End 70 "child";
      ev 5 1 Sync.Join 70 "child";
      ev 6 1 Sync.V_write 100 "x";
    |]
  in
  check_int "spawn/join edges are clean" 0
    (List.length (Hb.analyze ~scenario:"unit" trace))

let test_hb_wait_edge () =
  (* Condition.wait releases the mutex: the waiter's section and the
     signaler's section are lock-ordered through Wait_begin/Wait_end *)
  let trace =
    [|
      ev 0 1 Sync.Acquire 50 "m";
      ev 1 1 Sync.Wait_begin 55 ~arg:50 "c";
      ev 2 2 Sync.Acquire 50 "m";
      ev 3 2 Sync.V_write 100 "x";
      ev 4 2 Sync.Signal 55 "c";
      ev 5 2 Sync.Release 50 "m";
      ev 6 1 Sync.Wait_end 55 ~arg:50 "c";
      ev 7 1 Sync.V_read 100 "x";
      ev 8 1 Sync.Release 50 "m";
    |]
  in
  check_int "wait edge is clean" 0
    (List.length (Hb.analyze ~scenario:"unit" trace))

let test_lockgraph_inversion () =
  let trace =
    [|
      ev 0 1 Sync.Acquire 50 "a";
      ev 1 1 Sync.Acquire 51 "b";
      ev 2 1 Sync.Release 51 "b";
      ev 3 1 Sync.Release 50 "a";
      ev 4 2 Sync.Acquire 51 "b";
      ev 5 2 Sync.Acquire 50 "a";
      ev 6 2 Sync.Release 50 "a";
      ev 7 2 Sync.Release 51 "b";
    |]
  in
  match Lockgraph.analyze ~scenario:"unit" trace with
  | [ f ] ->
      check_bool "inversion" true (f.Finding.kind = Finding.Lock_inversion);
      check_bool "both classes named" true (f.Finding.subject = "a <-> b")
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs))

let test_lockgraph_consistent_order_clean () =
  let trace =
    [|
      ev 0 1 Sync.Acquire 50 "a";
      ev 1 1 Sync.Acquire 51 "b";
      ev 2 1 Sync.Release 51 "b";
      ev 3 1 Sync.Release 50 "a";
      ev 4 2 Sync.Acquire 50 "a";
      ev 5 2 Sync.Acquire 51 "b";
      ev 6 2 Sync.Release 51 "b";
      ev 7 2 Sync.Release 50 "a";
    |]
  in
  check_int "consistent nesting is clean" 0
    (List.length (Lockgraph.analyze ~scenario:"unit" trace))

let test_lockgraph_leak () =
  let trace =
    [|
      ev 0 2 Sync.Begin 70 "leaky";
      ev 1 2 Sync.Acquire 50 "m";
      ev 2 2 Sync.End 70 "leaky";
    |]
  in
  match Lockgraph.analyze ~scenario:"unit" trace with
  | [ f ] ->
      check_bool "leak" true (f.Finding.kind = Finding.Lock_leak);
      check_bool "leak is a warning, not a violation" false
        (Finding.is_violation f)
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs))

let test_lockgraph_incomplete_thread_no_leak () =
  (* no End event: the thread was still running at disarm; truncation
     must not fabricate a leak *)
  let trace = [| ev 0 2 Sync.Begin 70 "t"; ev 1 2 Sync.Acquire 50 "m" |] in
  check_int "no leak without End" 0
    (List.length (Lockgraph.analyze ~scenario:"unit" trace))

(* ------------------------------------------------------------------ *)
(* the defect doubles: the detector must fire                          *)

let test_defect_counter_caught () =
  let r = Race.run ~seed:3 ~schedules:2 ~period:5 [ scenario "defect-counter" ] in
  check_bool "violations reported" true (Race.violations r <> []);
  check_bool "a data race, specifically" true
    (List.mem Finding.Data_race (kinds (Race.findings r)))

let test_defect_lock_order_caught () =
  let r =
    Race.run ~seed:3 ~schedules:2 ~period:5 [ scenario "defect-lock-order" ]
  in
  check_bool "violations reported" true (Race.violations r <> []);
  check_bool "a lock inversion, specifically" true
    (List.mem Finding.Lock_inversion (kinds (Race.findings r)))

(* ------------------------------------------------------------------ *)
(* shipped subsystems under perturbation: silent detector, holding
   invariants (satellite: jobq + lease-pool stress)                    *)

let run_clean name ~seed ~schedules =
  let r = Race.run ~seed ~schedules ~period:5 [ scenario name ] in
  List.iter
    (fun f ->
      Alcotest.fail
        (Format.asprintf "%s seed=%d: unexpected %a" name seed Finding.pp f))
    (Race.findings r)

let test_jobq_stress () =
  List.iter (fun seed -> run_clean "jobq" ~seed ~schedules:3) [ 1; 5; 11 ]

let test_lease_pool_stress () =
  List.iter (fun seed -> run_clean "lease-pool" ~seed ~schedules:3) [ 2; 9 ]

let test_metrics_clean () = run_clean "metrics" ~seed:4 ~schedules:2
let test_sweep_cache_clean () = run_clean "sweep-cache" ~seed:6 ~schedules:2
let test_pool_sweep_clean () = run_clean "pool-sweep" ~seed:8 ~schedules:2

(* ------------------------------------------------------------------ *)
(* report determinism                                                  *)

let test_same_seed_report_identical () =
  let render () =
    Lcp_obs.Json.to_string
      (Race.to_json
         (Race.run ~seed:9 ~schedules:3 ~period:5
            [ scenario "jobq"; scenario "metrics"; scenario "defect-counter" ]))
  in
  let a = render () and b = render () in
  check_bool "same seed renders byte-identical JSON" true (a = b)

let suite =
  [
    Alcotest.test_case "sync: disarmed is silent" `Quick test_disarmed_is_silent;
    Alcotest.test_case "sync: with_lock is exception-safe" `Quick
      test_with_lock_exception_safe;
    Alcotest.test_case "sync: trace order contract" `Quick
      test_trace_order_contract;
    Alcotest.test_case "sync: spawn/join edges" `Quick test_spawn_join_edges;
    Alcotest.test_case "sync: child exception re-raised at join" `Quick
      test_spawn_reraises;
    Alcotest.test_case "hb: unsynchronized writes race" `Quick
      test_hb_flags_unsynchronized;
    Alcotest.test_case "hb: lock edges" `Quick test_hb_lock_synchronizes;
    Alcotest.test_case "hb: atomic publish edges" `Quick
      test_hb_atomic_synchronizes;
    Alcotest.test_case "hb: spawn/join edges" `Quick test_hb_spawn_edge;
    Alcotest.test_case "hb: condition-wait edges" `Quick test_hb_wait_edge;
    Alcotest.test_case "lockgraph: AB/BA inversion" `Quick
      test_lockgraph_inversion;
    Alcotest.test_case "lockgraph: consistent order clean" `Quick
      test_lockgraph_consistent_order_clean;
    Alcotest.test_case "lockgraph: leak at thread end" `Quick
      test_lockgraph_leak;
    Alcotest.test_case "lockgraph: truncation fabricates no leak" `Quick
      test_lockgraph_incomplete_thread_no_leak;
    Alcotest.test_case "defect double: unguarded counter caught" `Quick
      test_defect_counter_caught;
    Alcotest.test_case "defect double: lock inversion caught" `Quick
      test_defect_lock_order_caught;
    Alcotest.test_case "jobq stress: FIFO/bound invariants, no findings"
      `Quick test_jobq_stress;
    Alcotest.test_case "lease-pool stress: exclusivity, no findings" `Quick
      test_lease_pool_stress;
    Alcotest.test_case "metrics scenario clean" `Quick test_metrics_clean;
    Alcotest.test_case "sweep-cache scenario clean" `Quick
      test_sweep_cache_clean;
    Alcotest.test_case "pool-sweep scenario clean" `Quick test_pool_sweep_clean;
    Alcotest.test_case "same-seed report is byte-identical" `Quick
      test_same_seed_report_identical;
  ]
