(* The sweep coordinator: backoff policy, subprocess supervision with
   injected worker kills, the incomplete-shard merge refusal, the
   remote sweep-shard path against a live daemon, and the small-sweep
   pool bypass. The load-bearing assertion throughout: the coordinated
   merged report is byte-identical to the unsharded run's, whatever
   happened to the workers along the way. *)

open Helpers
module Json = Lcp_obs.Json
module Run_cfg = Lcp_obs.Run_cfg
module Sweep = Lcp_engine.Sweep
module Checkpoint = Lcp_engine.Checkpoint
module Coordinator = Lcp_serve.Coordinator
module Protocol = Lcp_serve.Protocol
module Server = Lcp_serve.Server
module Session = Lcp_serve.Session
module Client = Lcp_serve.Client

let check_str = Alcotest.(check string)

(* the real binary the coordinator forks; the test executable lives in
   _build/default/test/ next to _build/default/bin/main.exe *)
let lcp_bin =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/main.exe"

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "lcp-test-coord-%d-%d" (Unix.getpid ()) !counter)
    in
    Unix.mkdir d 0o700;
    d

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
      (Sys.readdir d);
    try Unix.rmdir d with Unix.Unix_error _ -> ()
  end

let with_dir f =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let suite_of key = (Option.get (Lcp.Registry.find key)).Lcp.Registry.suite

(* The unsharded reference: the same sweep run in-process through one
   checkpoint, rendered exactly as --merge would render it. *)
let reference_report ~decoder ~n =
  let path = Filename.temp_file "lcp-test-coord-ref" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Sweep.clear_cache ();
  let cfg = Run_cfg.make ~jobs:1 () in
  ignore
    (Lcp.Checker.soundness_sweep ~cfg (suite_of decoder) ~n
       ~checkpoint:{ Checkpoint.path; resume = false; tag = decoder });
  match Checkpoint.load path with
  | Error e -> Alcotest.fail e
  | Ok ck -> Json.to_string_pretty (Checkpoint.report_json ck)

let run_exn config =
  match Coordinator.run config with
  | Ok o -> o
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* pure policy                                                         *)

let test_backoff_capped () =
  let c =
    {
      (Coordinator.default_config ~decoder:"degree-one" ~n:5 ~shards:2
         ~dir:"unused")
      with
      Coordinator.backoff_base_s = 0.25;
      backoff_max_s = 8.;
    }
  in
  check_bool "attempt 1 launches immediately" true
    (Coordinator.backoff_s c ~attempt:1 = 0.);
  check_bool "attempt 2 waits the base" true
    (Coordinator.backoff_s c ~attempt:2 = 0.25);
  check_bool "attempt 3 doubles" true
    (Coordinator.backoff_s c ~attempt:3 = 0.5);
  check_bool "attempt 4 doubles again" true
    (Coordinator.backoff_s c ~attempt:4 = 1.0);
  check_bool "large attempts are capped" true
    (Coordinator.backoff_s c ~attempt:40 = 8.);
  check_bool "backoff never decreases" true
    (let rec mono prev k =
       k > 12
       ||
       let b = Coordinator.backoff_s c ~attempt:k in
       b >= prev && mono b (k + 1)
     in
     mono 0. 1)

(* ------------------------------------------------------------------ *)
(* the small-sweep pool bypass                                         *)

let test_small_sweep_bypass () =
  check_bool "cutoff is positive" true (Sweep.small_sweep_cutoff > 0);
  (* n=5 keeps 11 classes, far under the cutoff: the wide-jobs run must
     take the sequential path yet report identical counters *)
  let counters jobs =
    Sweep.clear_cache ();
    let cfg = Run_cfg.make ~jobs () in
    (Lcp.Checker.soundness_sweep ~cfg (suite_of "degree-one") ~n:5)
      .Sweep.counters
  in
  check_bool "n=5 kept is under the cutoff" true
    (let cfg = Run_cfg.make ~jobs:1 () in
     Sweep.clear_cache ();
     let s = Lcp.Checker.soundness_sweep ~cfg (suite_of "degree-one") ~n:5 in
     s.Sweep.counters.Sweep.kept < Sweep.small_sweep_cutoff);
  check_bool "counters are jobs-invariant through the bypass" true
    (counters 1 = counters 8)

(* ------------------------------------------------------------------ *)
(* subprocess supervision                                              *)

let test_subprocess_matches_unsharded () =
  with_dir @@ fun dir ->
  let config =
    {
      (Coordinator.default_config ~decoder:"degree-one" ~n:6 ~shards:2 ~dir)
      with
      Coordinator.executor = Coordinator.Subprocess { bin = lcp_bin };
      poll_s = 0.01;
    }
  in
  let o = run_exn config in
  check_int "one launch per shard" 2 o.Coordinator.launched;
  check_int "no restarts on a clean run" 0 o.Coordinator.restarts;
  check_str "merged report == unsharded report"
    (reference_report ~decoder:"degree-one" ~n:6)
    (Json.to_string_pretty o.Coordinator.report)

let test_kill_restart_recovers () =
  with_dir @@ fun dir ->
  let spawns = ref [] in
  let config =
    {
      (Coordinator.default_config ~decoder:"degree-one" ~n:7 ~shards:2 ~dir)
      with
      Coordinator.executor = Coordinator.Subprocess { bin = lcp_bin };
      poll_s = 0.01;
      backoff_base_s = 0.01;
      inject_kill = Some 0;
      on_spawn =
        (fun ~shard ~attempt ~pid:_ -> spawns := (shard, attempt) :: !spawns);
    }
  in
  let o = run_exn config in
  check_bool "the injected kill forced a restart" true
    (o.Coordinator.restarts >= 1);
  check_bool "shard 0 was attempted at least twice" true
    (List.exists
       (fun r ->
         r.Coordinator.shard = 0 && r.Coordinator.attempts >= 2)
       o.Coordinator.shard_reports);
  check_bool "the restart was observed by on_spawn" true
    (List.mem (0, 2) !spawns);
  check_str "merged report survives the kill byte-for-byte"
    (reference_report ~decoder:"degree-one" ~n:7)
    (Json.to_string_pretty o.Coordinator.report)

(* ------------------------------------------------------------------ *)
(* deterministic preemption and the merge refusal                      *)

let test_merge_refuses_incomplete_shard () =
  let path = Filename.temp_file "lcp-test-coord-incomplete" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Sweep.clear_cache ();
  let cfg = Run_cfg.make ~jobs:1 () in
  let s =
    Lcp.Checker.soundness_sweep ~cfg (suite_of "degree-one") ~n:6 ~max_chunks:1
      ~checkpoint:{ Checkpoint.path; resume = false; tag = "degree-one" }
  in
  check_bool "preempted run checked only its first chunk" true
    (s.Sweep.counters.Sweep.checked < s.Sweep.counters.Sweep.kept);
  let ck =
    match Checkpoint.load path with
    | Ok ck -> ck
    | Error e -> Alcotest.fail e
  in
  check_bool "checkpoint is valid but incomplete" true
    (not ck.Checkpoint.complete);
  check_bool "heartbeat was stamped" true (ck.Checkpoint.saved_at > 0);
  match Checkpoint.merge [ ck ] with
  | Ok _ -> Alcotest.fail "merging an incomplete shard must fail"
  | Error msg ->
      check_bool "error names the shard" true
        (contains ~needle:"shard 0/1 is incomplete" msg);
      check_bool "error reports the progress" true
        (contains
           ~needle:
             (Printf.sprintf "%d/%d classes done" ck.Checkpoint.completed
                ck.Checkpoint.kept)
           msg);
      check_bool "error carries a real heartbeat timestamp" true
        (contains ~needle:"last checkpoint 2" msg
        && not (contains ~needle:"unknown" msg))

let test_preempted_checkpoint_resumes () =
  let path = Filename.temp_file "lcp-test-coord-resume" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Sweep.clear_cache ();
  let cfg = Run_cfg.make ~jobs:1 () in
  ignore
    (Lcp.Checker.soundness_sweep ~cfg (suite_of "degree-one") ~n:6
       ~max_chunks:1
       ~checkpoint:{ Checkpoint.path; resume = false; tag = "degree-one" });
  Sweep.clear_cache ();
  ignore
    (Lcp.Checker.soundness_sweep ~cfg (suite_of "degree-one") ~n:6
       ~checkpoint:{ Checkpoint.path; resume = true; tag = "degree-one" });
  match Checkpoint.load path with
  | Error e -> Alcotest.fail e
  | Ok ck ->
      check_bool "resumed run completed the shard" true ck.Checkpoint.complete;
      check_str "resumed report == unsharded report"
        (reference_report ~decoder:"degree-one" ~n:6)
        (Json.to_string_pretty (Checkpoint.report_json ck))

(* ------------------------------------------------------------------ *)
(* the remote executor and the daemon's coordinated path               *)

let fresh_socket =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcp-test-coord-%d-%d.sock" (Unix.getpid ()) !counter)

let with_server f =
  let socket_path = fresh_socket () in
  let config =
    {
      (Server.default_config ~socket_path) with
      Server.workers = 2;
      limits = { Session.default_limits with Session.shard_bin = lcp_bin };
    }
  in
  let t = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Server.wait t)
    (fun () -> f socket_path t)

let test_remote_shards_match_unsharded () =
  with_server @@ fun socket _t ->
  with_dir @@ fun dir ->
  let config =
    {
      (Coordinator.default_config ~decoder:"degree-one" ~n:6 ~shards:2 ~dir)
      with
      Coordinator.executor = Coordinator.Remote { sockets = [ socket ] };
      poll_s = 0.01;
    }
  in
  let o = run_exn config in
  check_int "one remote launch per shard" 2 o.Coordinator.launched;
  check_int "no steals when the daemon answers" 0 o.Coordinator.steals;
  check_str "remotely merged report == unsharded report"
    (reference_report ~decoder:"degree-one" ~n:6)
    (Json.to_string_pretty o.Coordinator.report)

let test_daemon_runs_coordinated_sweep () =
  with_server @@ fun socket _t ->
  let req =
    {
      Protocol.kind =
        Protocol.Sweep
          {
            decoder = "degree-one";
            n = 5;
            strategy = "orderly";
            early_exit = false;
            shards = 2;
          };
      opts = Protocol.default_opts;
    }
  in
  Client.with_connection socket @@ fun c ->
  match Client.request c req with
  | Error e -> Alcotest.fail e
  | Ok resp ->
      check_bool "coordinated request is answered ok" true
        (resp.Protocol.status = Protocol.Done);
      let report =
        match Json.member "report" resp.Protocol.result with
        | Ok j -> j
        | Error e -> Alcotest.fail e
      in
      check_str "daemon's coordinated report == unsharded report"
        (reference_report ~decoder:"degree-one" ~n:5)
        (Json.to_string_pretty report);
      let restarts =
        match Json.member "coordinator" resp.Protocol.result with
        | Ok coord -> (
            match Json.member "restarts" coord with
            | Ok (Json.Int r) -> r
            | _ -> Alcotest.fail "coordinator payload lacks restarts")
        | Error e -> Alcotest.fail e
      in
      check_int "clean daemon run needs no restarts" 0 restarts

let test_sweep_shard_protocol_round_trip () =
  let req =
    {
      Protocol.kind =
        Protocol.Sweep_shard
          {
            decoder = "even-cycle";
            n = 6;
            strategy = "orderly";
            shards = 3;
            shard = 2;
          };
      opts = Protocol.default_opts;
    }
  in
  match Protocol.request_of_json (Protocol.request_to_json req) with
  | Error e -> Alcotest.fail e
  | Ok round -> (
      match round.Protocol.kind with
      | Protocol.Sweep_shard { decoder; n; strategy; shards; shard } ->
          check_str "decoder survives" "even-cycle" decoder;
          check_int "n survives" 6 n;
          check_str "strategy survives" "orderly" strategy;
          check_int "shards survives" 3 shards;
          check_int "shard survives" 2 shard
      | _ -> Alcotest.fail "round-tripped to the wrong kind")

let suite =
  [
    case "backoff: immediate first attempt, doubling, capped"
      test_backoff_capped;
    case "small sweeps bypass the domain pool, counters invariant"
      test_small_sweep_bypass;
    case "protocol: sweep-shard round-trips" test_sweep_shard_protocol_round_trip;
    slow_case "subprocess shards merge to the unsharded bytes"
      test_subprocess_matches_unsharded;
    slow_case "injected SIGKILL: restart from checkpoint, identical report"
      test_kill_restart_recovers;
    slow_case "merge refuses an incomplete shard, naming its heartbeat"
      test_merge_refuses_incomplete_shard;
    slow_case "a preempted checkpoint resumes to the identical report"
      test_preempted_checkpoint_resumes;
    slow_case "remote sweep-shard executor merges to the unsharded bytes"
      test_remote_shards_match_unsharded;
    slow_case "daemon runs a coordinated sweep server-side"
      test_daemon_runs_coordinated_sweep;
  ]
