(* PR-9 orbit pruning: the automorphism-quotient certificate search
   validated against the direct full-space oracle (cfg.orbit_prune =
   false) exactly as the acceptance tables were in PR 5 — witnesses
   bit-identical, tallies never larger, strong-soundness counts exact.

   The expensive n = 6 cross-check only runs when LCP_HEAVY is set. *)

open Lcp_graph
open Lcp_local
open Lcp
open Helpers
module Run_cfg = Lcp_obs.Run_cfg
module Metrics_obs = Lcp_obs.Metrics
module Auto = Lcp_engine.Auto

let heavy_enabled = Sys.getenv_opt "LCP_HEAVY" <> None
let orbit_cfg () = Run_cfg.make ~jobs:1 ()
let no_orbit_cfg () = Run_cfg.make ~jobs:1 ~orbit_prune:false ()

(* ------------------------------------------------------------------ *)
(* search_accepted: pruned vs direct, all registry decoders            *)

(* Same corpus walk as test_eval_cache's cross_check_registry, but the
   A/B axis is orbit_prune instead of eval_cache: witnesses must be
   bit-identical, the pruned tally never larger, and equal whenever
   the decoder is ineligible or the graph rigid. *)
let cross_check_registry ~max_n ~budget () =
  let corpus =
    List.concat_map
      (fun n -> Enumerate.connected_up_to_iso n)
      (List.init max_n (fun i -> i + 1))
  in
  List.iter
    (fun (e : Registry.entry) ->
      let suite = e.Registry.suite in
      let pruned_somewhere = ref false in
      List.iter
        (fun g ->
          let inst = Instance.make g in
          let alphabet = suite.Decoder.adversary_alphabet inst in
          if Labeling.count ~alphabet g <= budget then begin
            let search cfg =
              let w, t =
                Prover.search_accepted ~cfg suite.Decoder.dec ~alphabet inst
              in
              (w, t, Metrics_obs.counter cfg.Run_cfg.metrics "orbit_pruned_branches")
            in
            let on_witness, on_tally, on_cuts = search (orbit_cfg ()) in
            let off_witness, off_tally, off_cuts = search (no_orbit_cfg ()) in
            check_bool
              (Printf.sprintf "%s: witness identical (n=%d)" e.Registry.key
                 (Graph.order g))
              true
              (on_witness = off_witness);
            check_bool
              (Printf.sprintf "%s: pruned tally never larger (n=%d)"
                 e.Registry.key (Graph.order g))
              true (on_tally <= off_tally);
            check_int
              (Printf.sprintf "%s: pruning off cuts nothing (n=%d)"
                 e.Registry.key (Graph.order g))
              0 off_cuts;
            if on_cuts > 0 then pruned_somewhere := true;
            let eligible = Prover.orbit_eligible suite.Decoder.dec inst in
            let rigid = Auto.is_trivial (Auto.of_graph g) in
            if (not eligible) || rigid then begin
              check_int
                (Printf.sprintf "%s: ineligible/rigid tally equal (n=%d)"
                   e.Registry.key (Graph.order g))
                off_tally on_tally;
              check_int
                (Printf.sprintf "%s: ineligible/rigid cuts nothing (n=%d)"
                   e.Registry.key (Graph.order g))
                0 on_cuts
            end
          end)
        corpus;
      (* every eligible decoder meets a symmetric graph in the corpus *)
      let some_inst = Instance.make (Builders.cycle 4) in
      if Prover.orbit_eligible suite.Decoder.dec some_inst then
        check_bool
          (Printf.sprintf "%s actually pruned somewhere" e.Registry.key)
          true !pruned_somewhere)
    Registry.all

let test_registry_small_corpus () = cross_check_registry ~max_n:5 ~budget:20_000 ()

let test_registry_heavy_corpus () =
  if not heavy_enabled then ()
  else cross_check_registry ~max_n:6 ~budget:400_000 ()

(* iter/count_accepted enumerate the full accepted set and must never
   be quotiented, whatever the cfg says *)
let test_count_accepted_never_pruned () =
  List.iter
    (fun g ->
      let inst = Instance.make g in
      let suite = D_degree_one.suite in
      let alphabet = suite.Decoder.adversary_alphabet inst in
      let count cfg =
        Prover.count_accepted ~cfg suite.Decoder.dec ~alphabet inst
      in
      check_int
        (Printf.sprintf "count_accepted orbit-invariant on %s"
           (Graph.to_string g))
        (count (no_orbit_cfg ()))
        (count (orbit_cfg ())))
    [ Builders.cycle 4; Builders.cycle 5; Builders.complete 4 ]

(* ------------------------------------------------------------------ *)
(* strong soundness: quotient vs direct                                *)

let run_strong cfg suite ~k instances =
  let v = Checker.strong_soundness_exhaustive ~cfg suite ~k instances in
  (v, Metrics_obs.counter cfg.Run_cfg.metrics "labelings_checked")

(* on passing runs the orbit weights must partition the space: checked
   = |Sigma|^n exactly, bit-identical to the direct loop, even on the
   most symmetric graphs we have *)
let test_strong_soundness_exact_count () =
  List.iter
    (fun g ->
      let inst = Instance.make g in
      let suite = D_degree_one.suite in
      let alphabet = suite.Decoder.adversary_alphabet inst in
      let space = Labeling.count ~alphabet g in
      let on_v, on_c = run_strong (orbit_cfg ()) suite ~k:2 [ inst ] in
      let off_v, off_c = run_strong (no_orbit_cfg ()) suite ~k:2 [ inst ] in
      check_bool "verdict identical" (Checker.is_pass off_v)
        (Checker.is_pass on_v);
      check_int
        (Printf.sprintf "labelings_checked identical on %s" (Graph.to_string g))
        off_c on_c;
      if Checker.is_pass on_v then
        check_int
          (Printf.sprintf "checked = |alphabet|^n on %s" (Graph.to_string g))
          space on_c)
    [
      Builders.cycle 5;
      Builders.cycle 6;
      Builders.complete 4;
      Builders.complete_bipartite 2 3;
      Builders.star 4;
    ]

(* a failing run must surface the identical failure instance on both
   paths: trivial2's everywhere-accepting decoder makes any non
   1-colorable graph fail strong soundness at k = 1, and C6 has a big
   automorphism group to quotient by *)
let test_failing_case_identical () =
  let inst = Instance.make (Builders.cycle 6) in
  let suite = D_trivial.suite ~k:2 in
  let fail_of = function
    | Checker.Pass _ -> None
    | Checker.Fail f -> Some (f.Checker.instance, f.Checker.detail)
  in
  let on_v, _ = run_strong (orbit_cfg ()) suite ~k:1 [ inst ] in
  let off_v, _ = run_strong (no_orbit_cfg ()) suite ~k:1 [ inst ] in
  check_bool "both paths fail" true
    ((not (Checker.is_pass on_v)) && not (Checker.is_pass off_v));
  check_bool "failure instances identical" true (fail_of on_v = fail_of off_v)

(* quotient path composes with both eval-cache settings *)
let test_strong_soundness_crossed () =
  let inst = Instance.make (Builders.cycle 5) in
  let suite = D_degree_one.suite in
  let cell ~orbit_prune ~eval_cache =
    let cfg = Run_cfg.make ~jobs:1 ~orbit_prune ~eval_cache () in
    run_strong cfg suite ~k:2 [ inst ]
  in
  let base = cell ~orbit_prune:false ~eval_cache:false in
  List.iter
    (fun (op, ec) ->
      let v, c = cell ~orbit_prune:op ~eval_cache:ec in
      check_bool "verdict matches baseline" (Checker.is_pass (fst base))
        (Checker.is_pass v);
      check_int "checked matches baseline" (snd base) c)
    [ (true, true); (true, false); (false, true) ]

let suite =
  [
    case "registry cross-check, n <= 5 corpus" test_registry_small_corpus;
    case "count_accepted never orbit-pruned" test_count_accepted_never_pruned;
    case "strong soundness: quotient = direct, exact counts"
      test_strong_soundness_exact_count;
    case "strong soundness: failing instances identical"
      test_failing_case_identical;
    case "strong soundness: orbit x eval-cache crossed"
      test_strong_soundness_crossed;
    slow_case "registry cross-check, n = 6 (LCP_HEAVY)"
      test_registry_heavy_corpus;
  ]
