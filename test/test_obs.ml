(* The Lcp_obs layer: span nesting, counters and gauges, the Metrics
   JSON round-trip, Run_cfg semantics, the JSON sink, and the
   counter-determinism contract exercised on a real n = 6 sweep. *)

open Helpers
module Metrics = Lcp_obs.Metrics
module Sink = Lcp_obs.Sink
module Run_cfg = Lcp_obs.Run_cfg
module Json = Lcp_obs.Json

let test_span_nesting () =
  let m = Metrics.create () in
  Metrics.with_span m "a" (fun () ->
      Metrics.with_span m "b" (fun () -> ());
      Metrics.with_span m "b" (fun () -> ()));
  Metrics.with_span m "a" (fun () -> ());
  (match Metrics.span m "a" with
  | Some (entries, _) -> check_int "a entered twice" 2 entries
  | None -> Alcotest.fail "span a missing");
  (match Metrics.span m "a/b" with
  | Some (entries, _) -> check_int "a/b aggregates both entries" 2 entries
  | None -> Alcotest.fail "span a/b missing");
  check_bool "no top-level b" true (Metrics.span m "b" = None)

let test_span_survives_exception () =
  let m = Metrics.create () in
  (try Metrics.with_span m "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  Metrics.with_span m "after" (fun () -> ());
  check_bool "raising span still recorded" true (Metrics.span m "boom" <> None);
  check_bool "stack popped: next span is top-level" true
    (Metrics.span m "after" <> None)

let test_counters_and_gauges () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr m ~by:4 "c";
  Metrics.incr m ~by:0 "never";
  check_int "increments sum" 5 (Metrics.counter m "c");
  check_int "by:0 materializes at 0" 0 (Metrics.counter m "never");
  check_bool "materialized key listed" true
    (List.mem_assoc "never" (Metrics.counters m));
  Metrics.set_gauge m "g" 7;
  Metrics.set_gauge m "g" 9;
  check_bool "gauge last write wins" true (Metrics.gauge m "g" = Some 9)

let test_metrics_json_roundtrip () =
  let m = Metrics.create () in
  Metrics.incr m ~by:3 "x";
  Metrics.incr m "y";
  Metrics.set_gauge m "g" 1;
  Metrics.with_span m "s" (fun () -> Metrics.with_span m "t" (fun () -> ()));
  let s = Json.to_string (Metrics.to_json m) in
  match Json.of_string s with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Metrics.of_json j with
      | Error e -> Alcotest.fail e
      | Ok m' ->
          Alcotest.(check string) "byte-identical re-rendering" s
            (Json.to_string (Metrics.to_json m')))

let test_schema_versions () =
  check_int "schema_version bumped for the counter rename" 2
    Metrics.schema_version;
  (* v1 files (pre-rename counter vocabulary, same layout) still load *)
  let v1 =
    {|{"schema_version": 1, "counters": {"masks_scanned": 64},
       "gauges": {}, "spans": {}}|}
  in
  (match Json.of_string v1 with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Metrics.of_json j with
      | Error e -> Alcotest.fail e
      | Ok m ->
          check_int "v1 counters load verbatim" 64
            (Metrics.counter m "masks_scanned")));
  let v3 =
    {|{"schema_version": 3, "counters": {}, "gauges": {}, "spans": {}}|}
  in
  match Json.of_string v3 with
  | Error e -> Alcotest.fail e
  | Ok j ->
      check_bool "future versions rejected" true
        (Result.is_error (Metrics.of_json j))

let test_run_cfg_semantics () =
  let cfg = Run_cfg.make () in
  check_bool "jobs normalized to >= 1" true (cfg.Run_cfg.jobs >= 1);
  check_int "jobs:0 means the recommended count" cfg.Run_cfg.jobs
    (Run_cfg.make ~jobs:0 ()).Run_cfg.jobs;
  check_int "sequential forces 1" 1 (Run_cfg.sequential cfg).Run_cfg.jobs;
  let a = Random.State.int (Run_cfg.rng cfg) 1_000_000 in
  let b = Random.State.int (Run_cfg.rng cfg) 1_000_000 in
  check_int "rng replays identically per phase" a b;
  check_bool "no deadline never expires" false (Run_cfg.expired cfg)

let test_json_sink () =
  let path = Filename.temp_file "lcp_obs" ".json" in
  let cfg = Run_cfg.make ~jobs:1 ~sink:(Sink.json_file path) () in
  Run_cfg.count cfg ~by:2 "written";
  Run_cfg.span cfg "phase" (fun () -> ());
  Run_cfg.flush cfg;
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Json.of_string s with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Metrics.of_json j with
      | Error e -> Alcotest.fail e
      | Ok m -> check_int "counter survives the file" 2 (Metrics.counter m "written"))

(* Regression for the tailing contract: the metrics file is rewritten
   atomically on EVERY event, so a reader that opens it mid-run — after
   any span closes, before the final flush — always sees one complete,
   parseable JSON document, never a torn or buffered prefix. *)
let test_json_sink_live () =
  let path = Filename.temp_file "lcp_obs_live" ".json" in
  let cfg = Run_cfg.make ~jobs:1 ~sink:(Sink.json_file path) () in
  let read_doc () =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.of_string s with
    | Error e -> Alcotest.fail ("mid-run metrics file torn: " ^ e)
    | Ok j -> (
        match Metrics.of_json j with
        | Error e -> Alcotest.fail e
        | Ok m -> m)
  in
  Run_cfg.count cfg ~by:1 "step";
  Run_cfg.span cfg "phase1" (fun () -> ());
  (* no flush yet: the span-end event alone must have produced a
     complete document that already carries the counter *)
  let mid = read_doc () in
  check_int "mid-run counter visible" 1 (Metrics.counter mid "step");
  Run_cfg.count cfg ~by:1 "step";
  Run_cfg.span cfg "phase2" (fun () -> ());
  let mid2 = read_doc () in
  check_int "second span refreshed the file" 2 (Metrics.counter mid2 "step");
  Run_cfg.flush cfg;
  let final = read_doc () in
  check_int "flush is the same document" 2 (Metrics.counter final "step");
  Sys.remove path

(* The determinism contract, end to end: the same sweep at jobs=1 and
   jobs=4 must produce identical work-item counters (gauges and spans
   are exempt — they measure the actual execution). *)

let deterministic_counters =
  [
    "candidates_generated"; "connected"; "classes"; "dedup_hits"; "cache_hits";
    "cache_misses"; "kept"; "checked"; "passed"; "violations";
    "labelings_checked"; "eval_cache_hits"; "eval_cache_misses";
  ]

let sweep_counters jobs =
  Lcp_engine.Sweep.clear_cache ();
  let cfg = Run_cfg.make ~jobs () in
  ignore (Lcp.Checker.soundness_sweep ~cfg Lcp.D_degree_one.suite ~n:6);
  List.map
    (fun name -> (name, Metrics.counter cfg.Run_cfg.metrics name))
    deterministic_counters

let test_counter_determinism () =
  let seq = sweep_counters 1 in
  let par = sweep_counters 4 in
  List.iter2
    (fun (name, a) (_, b) -> check_int ("jobs-invariant: " ^ name) a b)
    seq par;
  check_int "112 connected classes on 6 nodes" 112 (List.assoc "classes" seq);
  check_bool "search actually ran" true (List.assoc "labelings_checked" seq > 0)

let suite =
  [
    case "span nesting paths" test_span_nesting;
    case "span recorded on exception" test_span_survives_exception;
    case "counters and gauges" test_counters_and_gauges;
    case "metrics JSON round-trip" test_metrics_json_roundtrip;
    case "schema v2 accepts v1, rejects v3" test_schema_versions;
    case "run-cfg semantics" test_run_cfg_semantics;
    case "json sink writes parseable metrics" test_json_sink;
    case "json sink is live and atomic mid-run" test_json_sink_live;
    slow_case "counters identical jobs=1 vs jobs=4 (n=6 sweep)"
      test_counter_determinism;
  ]
