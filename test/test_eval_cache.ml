(* PR-5 acceptance tables: the memoized certificate-search path
   validated graph-for-graph against the direct view-extraction oracle
   (cfg.eval_cache = false), plus the table's own invariants.

   The expensive n = 6 / n = 7 cross-checks only run when LCP_HEAVY is
   set: `LCP_HEAVY=1 dune runtest`. *)

open Lcp_graph
open Lcp_local
open Lcp
open Helpers
module Run_cfg = Lcp_obs.Run_cfg
module Metrics_obs = Lcp_obs.Metrics
module Eval_cache = Lcp_engine.Eval_cache

let heavy_enabled = Sys.getenv_opt "LCP_HEAVY" <> None

let memo_cfg () = Run_cfg.make ~jobs:1 ()
let direct_cfg () = Run_cfg.make ~jobs:1 ~eval_cache:false ()

(* ------------------------------------------------------------------ *)
(* table invariants                                                    *)

let test_verdicts_match_decoder_run () =
  (* every one of the 5^4 complete labelings of two 4-node shapes:
     the table's verdict vector is Decoder.run's, bit for bit *)
  let dec = D_degree_one.decoder in
  let alphabet = D_degree_one.alphabet in
  List.iter
    (fun g ->
      let inst = Instance.make g in
      let ec =
        Eval_cache.create ~radius:dec.Decoder.radius
          ~accepts:dec.Decoder.accepts ~alphabet inst
      in
      Labeling.iter_all ~alphabet g (fun lab ->
          let direct = Decoder.run dec (Instance.with_labels inst lab) in
          Alcotest.(check (array bool))
            "memoized = direct" direct
            (Eval_cache.verdicts ec lab)))
    [ Builders.path 4; Builders.cycle 4 ]

let test_stats_accounting () =
  let dec = D_degree_one.decoder in
  let alphabet = D_degree_one.alphabet in
  let g = Builders.cycle 4 in
  let inst = Instance.make g in
  let ec =
    Eval_cache.create ~radius:dec.Decoder.radius ~accepts:dec.Decoder.accepts
      ~alphabet inst
  in
  check_int "fresh table" 0 (fst (Eval_cache.stats ec) + snd (Eval_cache.stats ec));
  let queries = ref 0 in
  Labeling.iter_all ~alphabet g (fun lab ->
      ignore (Eval_cache.verdicts ec lab);
      queries := !queries + Graph.order g);
  let hits, misses = Eval_cache.stats ec in
  check_int "every query is a hit or a miss" !queries (hits + misses);
  (* a radius-1 ball on C4 has 3 nodes: at most 5^3 distinct keys *)
  check_bool "misses bounded by the key space" true
    (misses <= Graph.order g * 125);
  (* replaying the same queries adds only hits *)
  Labeling.iter_all ~alphabet g (fun lab ->
      ignore (Eval_cache.verdicts ec lab));
  let _, misses' = Eval_cache.stats ec in
  check_int "replay decodes nothing new" misses misses'

let test_dense_limit_variants_agree () =
  (* force the hashtable fallback with dense_limit = 0 and compare
     against the dense table verdict for verdict equality *)
  let dec = D_degree_one.decoder in
  let alphabet = D_degree_one.alphabet in
  let g = Builders.pendant (Builders.cycle 3) 0 in
  let inst = Instance.make g in
  let mk limit =
    Eval_cache.create ~dense_limit:limit ~radius:dec.Decoder.radius
      ~accepts:dec.Decoder.accepts ~alphabet inst
  in
  let dense = mk (1 lsl 16) and hashed = mk 0 in
  Labeling.iter_all ~alphabet g (fun lab ->
      Alcotest.(check (array bool))
        "dense = hashed"
        (Eval_cache.verdicts dense lab)
        (Eval_cache.verdicts hashed lab))

let test_out_of_alphabet_bypass () =
  (* the search's "?" placeholder outside the ball is fine; an
     off-alphabet label inside the ball is answered but not cached *)
  let dec = D_degree_one.decoder in
  let alphabet = D_degree_one.alphabet in
  let g = Builders.path 3 in
  let inst = Instance.make g in
  let ec =
    Eval_cache.create ~radius:dec.Decoder.radius ~accepts:dec.Decoder.accepts
      ~alphabet inst
  in
  let lab = [| "junk-symbol"; "junk-symbol"; "junk-symbol" |] in
  let direct = Decoder.run dec (Instance.with_labels inst lab) in
  Alcotest.(check (array bool))
    "bypass answers correctly" direct (Eval_cache.verdicts ec lab);
  let hits, misses = Eval_cache.stats ec in
  check_int "bypass queries count neither hits nor misses" 0 (hits + misses)

(* ------------------------------------------------------------------ *)
(* memoized vs direct, all registry decoders, exhaustive small corpus  *)

(* Cross-check search_accepted (witness AND tally) on every connected
   iso class with n <= max_n, for every shipped decoder, skipping
   (decoder, class) pairs whose full labeling space exceeds [budget] —
   the saturating Labeling.count makes the guard total even for the
   id-indexed alphabets (spanning, watermelon) whose spaces overflow. *)
let cross_check_registry ~max_n ~budget () =
  let corpus =
    List.concat_map
      (fun n -> Enumerate.connected_up_to_iso n)
      (List.init max_n (fun i -> i + 1))
  in
  List.iter
    (fun (e : Registry.entry) ->
      let suite = e.Registry.suite in
      let covered = ref 0 in
      List.iter
        (fun g ->
          let inst = Instance.make g in
          let alphabet = suite.Decoder.adversary_alphabet inst in
          if Labeling.count ~alphabet g <= budget then begin
            incr covered;
            let search cfg =
              Prover.search_accepted ~cfg suite.Decoder.dec ~alphabet inst
            in
            let memo_witness, memo_tally = search (memo_cfg ()) in
            let direct_witness, direct_tally = search (direct_cfg ()) in
            check_bool
              (Printf.sprintf "%s: witness identical (n=%d)" e.Registry.key
                 (Graph.order g))
              true
              (memo_witness = direct_witness);
            check_int
              (Printf.sprintf "%s: tally identical (n=%d)" e.Registry.key
                 (Graph.order g))
              direct_tally memo_tally
          end)
        corpus;
      check_bool
        (Printf.sprintf "%s cross-checked on at least one class" e.Registry.key)
        true (!covered > 0))
    Registry.all

let test_registry_small_corpus () = cross_check_registry ~max_n:5 ~budget:20_000 ()

let test_registry_heavy_corpus () =
  if not heavy_enabled then ()
  else cross_check_registry ~max_n:6 ~budget:400_000 ()

(* ------------------------------------------------------------------ *)
(* checker paths                                                       *)

let test_strong_soundness_paths_agree () =
  let instances =
    [
      Instance.make (Builders.pendant (Builders.cycle 3) 0);
      Instance.make (Builders.path 4);
    ]
  in
  let run cfg =
    let v =
      Checker.strong_soundness_exhaustive ~cfg D_degree_one.suite ~k:2 instances
    in
    (Checker.is_pass v, Metrics_obs.counter cfg.Run_cfg.metrics "labelings_checked")
  in
  let memo_pass, memo_checked = run (memo_cfg ()) in
  let direct_pass, direct_checked = run (direct_cfg ()) in
  check_bool "verdict identical" memo_pass direct_pass;
  check_int "labelings_checked identical" direct_checked memo_checked

(* jobs=1 vs jobs=4, crossed with eval-cache on/off: the whole n=5
   soundness sweep must report the same labelings_checked in all four
   cells, and the eval counters must be jobs-invariant per setting. *)
let test_sweep_counters_crossed () =
  let counters jobs eval_cache =
    Lcp_engine.Sweep.clear_cache ();
    let cfg = Run_cfg.make ~jobs ~eval_cache () in
    ignore (Checker.soundness_sweep ~cfg D_degree_one.suite ~n:5);
    let c name = Metrics_obs.counter cfg.Run_cfg.metrics name in
    (c "labelings_checked", c "eval_cache_hits", c "eval_cache_misses")
  in
  let seq_on = counters 1 true in
  let par_on = counters 4 true in
  let seq_off = counters 1 false in
  let par_off = counters 4 false in
  check_bool "cache on: jobs-invariant" true (seq_on = par_on);
  check_bool "cache off: jobs-invariant" true (seq_off = par_off);
  let checked (c, _, _) = c in
  check_int "labelings_checked independent of the cache" (checked seq_off)
    (checked seq_on);
  let hits (_, h, _) = h and misses (_, _, m) = m in
  check_bool "cache on: table actually used" true (hits seq_on > 0);
  check_bool "hits + misses cover some queries" true (misses seq_on > 0);
  check_int "cache off: hits materialized at 0" 0 (hits seq_off);
  check_int "cache off: misses materialized at 0" 0 (misses seq_off)

(* ------------------------------------------------------------------ *)
(* heavy sweeps: n = 6 per-class equality, n = 7 memoized verdict      *)

let test_n6_sweep_paths_agree () =
  if not heavy_enabled then ()
  else begin
    let sweep eval_cache =
      Lcp_engine.Sweep.clear_cache ();
      let cfg = Run_cfg.make ~jobs:1 ~eval_cache () in
      let s = Checker.soundness_sweep ~cfg D_degree_one.suite ~n:6 in
      ( Checker.verdict_of_sweep s,
        Metrics_obs.counter cfg.Run_cfg.metrics "labelings_checked" )
    in
    let memo_v, memo_c = sweep true in
    let direct_v, direct_c = sweep false in
    check_bool "n=6 verdicts identical" true (memo_v = direct_v);
    check_int "n=6 labelings_checked identical" direct_c memo_c;
    check_bool "n=6 sweep passes" true (Checker.is_pass memo_v)
  end

let test_n7_memoized_sweep_passes () =
  if not heavy_enabled then ()
  else begin
    Lcp_engine.Sweep.clear_cache ();
    let cfg = Run_cfg.make () in
    let s = Checker.soundness_sweep ~cfg D_degree_one.suite ~n:7 in
    check_bool "n=7 memoized sweep passes" true
      (Checker.is_pass (Checker.verdict_of_sweep s))
  end

let suite =
  [
    case "verdicts = Decoder.run on the full labeling space"
      test_verdicts_match_decoder_run;
    case "hit/miss accounting" test_stats_accounting;
    case "dense and hashed stores agree" test_dense_limit_variants_agree;
    case "out-of-alphabet labels bypass the table" test_out_of_alphabet_bypass;
    case "registry cross-check, n <= 5 corpus" test_registry_small_corpus;
    case "strong soundness: memoized = direct" test_strong_soundness_paths_agree;
    slow_case "sweep counters, jobs x eval-cache crossed"
      test_sweep_counters_crossed;
    slow_case "registry cross-check, n = 6 (LCP_HEAVY)"
      test_registry_heavy_corpus;
    slow_case "n=6 sweep memoized = direct (LCP_HEAVY)"
      test_n6_sweep_paths_agree;
    slow_case "n=7 memoized sweep passes (LCP_HEAVY)"
      test_n7_memoized_sweep_passes;
  ]
